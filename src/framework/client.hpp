#pragma once
/// \file client.hpp
/// The client side of Fig. 1: issue a request, receive a challenge, run
/// the solver, submit the solution, receive the response. Also provides
/// an in-process convenience loop against a PowServer for examples,
/// tests, and the wall-clock benches.

#include <cstdint>
#include <string>

#include "common/clock.hpp"
#include "features/feature_vector.hpp"
#include "framework/protocol.hpp"
#include "framework/server.hpp"
#include "pow/solver.hpp"

namespace powai::framework {

struct ClientConfig final {
  unsigned solver_threads = 1;
  /// 0 = keep hashing until solved.
  std::uint64_t max_attempts = 0;
};

/// Result of one full request→resource round trip.
struct RoundTrip final {
  Response response;             ///< final server answer
  std::uint64_t request_id = 0;  ///< correlation id the request carried
  std::uint64_t attempts = 0;    ///< hashes spent on the puzzle
  unsigned difficulty = 0;       ///< difficulty that was assigned (0 = none)
  double solve_wall_ms = 0.0;    ///< wall-clock time inside the solver
  bool served = false;           ///< response.status == kOk
  bool challenged = false;       ///< a challenge was received
  pow::Puzzle puzzle;            ///< the challenge's puzzle (if challenged)
};

class PowClient final {
 public:
  /// \p ip is the client's source address (also the puzzle binding).
  explicit PowClient(std::string ip, ClientConfig config = {});

  /// Builds a step-1 request (fresh correlation id per call).
  [[nodiscard]] Request make_request(const std::string& path,
                                     const features::FeatureVector& features);

  /// Solves a challenge into a submission. Returns found=false inside the
  /// result when the attempt budget ran out.
  struct SolveOutcome final {
    Submission submission;
    std::uint64_t attempts = 0;
    bool solved = false;
  };
  [[nodiscard]] SolveOutcome solve(const Challenge& challenge) const;

  /// In-process round trip against a server (request → [solve] → submit).
  [[nodiscard]] RoundTrip run(PowServer& server, const std::string& path,
                              const features::FeatureVector& features);

  [[nodiscard]] const std::string& ip() const { return ip_; }

 private:
  std::string ip_;
  ClientConfig config_;
  pow::Solver solver_;
  std::uint64_t next_request_id_ = 1;
};

}  // namespace powai::framework
