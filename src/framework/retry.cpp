#include "framework/retry.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>

namespace powai::framework {

std::uint64_t retry_client_key(const std::string& ip) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : ip) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

common::Duration retry_backoff(const RetryPolicy& policy,
                               std::uint64_t client_key,
                               std::uint64_t request_id, std::size_t attempt) {
  if (attempt == 0) return common::Duration::zero();
  // base * 2^(attempt-1), saturating into the cap (shift bounded so a
  // large attempt count cannot overflow the representation).
  const auto shift = std::min<std::size_t>(attempt - 1, 20);
  const auto scaled = policy.backoff_base * (std::uint64_t{1} << shift);
  auto wait = std::min<common::Duration>(scaled, policy.backoff_cap);
  if (policy.jitter_frac > 0.0) {
    // Stream id is a pure mix of (client, request, attempt): the same
    // tuple draws the same jitter in every run, regardless of how many
    // other clients are retrying concurrently.
    std::uint64_t state = client_key;
    std::uint64_t stream = common::splitmix64(state);
    state ^= request_id;
    stream ^= common::splitmix64(state);
    state ^= static_cast<std::uint64_t>(attempt);
    stream ^= common::splitmix64(state);
    auto rng = common::stream_rng(policy.jitter_seed, stream);
    const double frac = std::clamp(policy.jitter_frac, 0.0, 1.0);
    const double factor = rng.uniform(1.0 - frac, 1.0 + frac);
    wait = std::chrono::duration_cast<common::Duration>(
        std::chrono::duration<double, common::Duration::period>(
            static_cast<double>(wait.count()) * factor));
  }
  return wait;
}

}  // namespace powai::framework
