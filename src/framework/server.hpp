#pragma once
/// \file server.hpp
/// The AI-assisted PoW server — the wiring of Fig. 1's server side:
///
///   (2) the AI model inspects the request's features → reputation score
///   (3) the policy maps the score → puzzle difficulty
///   (4) the puzzle generator issues an authenticated puzzle
///   (5) the verifier checks the returned solution
///   (7) the resource is served on success
///
/// Every component arrives through an interface, preserving the paper's
/// modularity claim: any IReputationModel, any IPolicy. The server also
/// hosts the supporting machinery a deployment needs: a reputation cache,
/// a per-IP rate limiter, and counters for every outcome.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/rng.hpp"
#include "features/ip_address.hpp"
#include "framework/protocol.hpp"
#include "framework/rate_limiter.hpp"
#include "policy/policy.hpp"
#include "pow/batch_verifier.hpp"
#include "pow/generator.hpp"
#include "pow/verifier.hpp"
#include "reputation/model.hpp"
#include "reputation/sharded_cache.hpp"

namespace powai::framework {

/// Server configuration.
struct ServerConfig final {
  /// Secret shared between the generator and verifier (non-empty).
  common::Bytes master_secret;

  /// When false the server serves every request immediately — the
  /// no-defense baseline the throttling experiment compares against.
  bool pow_enabled = true;

  /// Memoize reputation scores per IP (EWMA + TTL).
  bool reputation_cache_enabled = true;
  reputation::CacheConfig cache;

  /// Lock stripes for the reputation cache (rounded up to a power of
  /// two); the entry budget in `cache.max_entries` is global.
  std::size_t cache_shards = 16;

  /// Worker threads for on_submission_batch (0 = hardware concurrency).
  /// The pool is created lazily on the first batch call, so servers that
  /// only ever verify one-at-a-time never spawn threads.
  std::size_t verify_threads = 0;

  /// Hard per-IP ceiling on challenge issuance.
  bool rate_limiter_enabled = false;
  RateLimiterConfig rate_limiter;

  pow::VerifierConfig verifier;

  /// Body returned with a successful response.
  std::string resource_body = "resource";

  /// Seed for the policy Rng (Policy 3 randomness); fixed default keeps
  /// experiments reproducible.
  std::uint64_t policy_seed = 0x9069'0ce5'7a37'b00fULL;
};

/// Outcome counters (monotonic).
struct ServerStats final {
  std::uint64_t requests = 0;
  std::uint64_t challenges_issued = 0;
  std::uint64_t served = 0;
  std::uint64_t served_without_pow = 0;
  std::uint64_t rejected_rate_limited = 0;
  std::uint64_t rejected_malformed = 0;
  std::uint64_t rejected_bad_solution = 0;
  std::uint64_t rejected_expired = 0;
  std::uint64_t rejected_replay = 0;
  std::uint64_t rejected_binding = 0;
  std::uint64_t difficulty_sum = 0;  ///< over issued challenges

  [[nodiscard]] double mean_difficulty() const {
    return challenges_issued > 0
               ? static_cast<double>(difficulty_sum) /
                     static_cast<double>(challenges_issued)
               : 0.0;
  }
};

/// Trace of the last scoring decision (diagnostics/experiments).
struct ScoringTrace final {
  double score = 0.0;
  policy::Difficulty difficulty = 0;
  bool from_cache = false;
};

class PowServer final {
 public:
  /// \p clock, \p model, and \p pol must outlive the server. The model
  /// must already be fitted. Throws std::invalid_argument on an empty
  /// master secret or an unfitted model.
  PowServer(const common::Clock& clock, const reputation::IReputationModel& model,
            const policy::IPolicy& pol, ServerConfig config);

  /// Steps 1-4: returns a Challenge normally; returns a Response directly
  /// when the request is malformed, rate-limited, or PoW is disabled.
  [[nodiscard]] std::variant<Challenge, Response> on_request(
      const Request& request);

  /// Steps 5-7: verifies and serves. \p observed_ip is the transport-
  /// level source address (empty skips the binding check).
  [[nodiscard]] Response on_submission(const Submission& submission,
                                       const std::string& observed_ip = {});

  /// Batch form of on_submission: verifies all submissions in parallel
  /// on the server's thread pool (created lazily, `verify_threads`
  /// workers), then folds outcomes into the stats serially. Result[i]
  /// corresponds to submissions[i]. \p observed_ips must be empty (skip
  /// the binding check everywhere) or one address per submission.
  /// Throws std::invalid_argument on a length mismatch.
  ///
  /// Safe to call while no other thread is inside the server: the
  /// parallelism is internal to the call, so callers keep the
  /// single-threaded programming model.
  [[nodiscard]] std::vector<Response> on_submission_batch(
      std::span<const Submission> submissions,
      std::span<const std::string> observed_ips = {});

  [[nodiscard]] const ServerStats& stats() const { return stats_; }
  [[nodiscard]] const ScoringTrace& last_trace() const { return trace_; }
  [[nodiscard]] const ServerConfig& config() const { return config_; }

 private:
  /// Folds one verification outcome into the stats and builds the
  /// client-facing Response (shared by single and batch submission).
  Response finalize_submission(std::uint64_t request_id,
                               const common::Status& status);

  const reputation::IReputationModel* model_;
  const policy::IPolicy* policy_;
  ServerConfig config_;
  common::Rng policy_rng_;
  pow::PuzzleGenerator generator_;
  pow::Verifier verifier_;
  reputation::ShardedReputationCache cache_;
  RateLimiter rate_limiter_;
  std::unique_ptr<pow::BatchVerifier> batch_verifier_;  // lazy
  ServerStats stats_;
  ScoringTrace trace_;
};

}  // namespace powai::framework
