#pragma once
/// \file server.hpp
/// The AI-assisted PoW server — the wiring of Fig. 1's server side:
///
///   (2) the AI model inspects the request's features → reputation score
///   (3) the policy maps the score → puzzle difficulty
///   (4) the puzzle generator issues an authenticated puzzle
///   (5) the verifier checks the returned solution
///   (7) the resource is served on success
///
/// Every component arrives through an interface, preserving the paper's
/// modularity claim: any IReputationModel, any IPolicy. The server also
/// hosts the supporting machinery a deployment needs: a reputation cache,
/// a per-IP rate limiter, and counters for every outcome.
///
/// Thread-safety: on_request, on_submission, and both batch entry points
/// may be called concurrently from any number of threads. Outcome
/// counters are relaxed atomics (stats() snapshots them), every shared
/// container is mutex-striped, and the generator/verifier pair is
/// internally synchronized. The model and policy passed in must be
/// safe for concurrent const calls (all in-tree ones are: they are
/// immutable after fit()/construction).
///
/// Determinism: the issuance path is lock-free *and* order-independent.
/// Each request's puzzle id is a keyed PRF of (client_ip, request_id),
/// its seed a pure function of (master_secret, puzzle_id), and its
/// policy randomness a counter-based stream keyed by (policy_seed,
/// puzzle_id) — so what a given request receives does not depend on
/// which thread, batch, or drain shard served it, and whole simulated
/// histories are bit-identical across serial and parallel runs (the
/// invariant tests/test_determinism.cpp pins). Corollary: request_id is
/// an idempotency key — re-sending the same (client_ip, request_id)
/// yields the same puzzle, and the replay cache still caps redemption
/// at once.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "features/ip_address.hpp"
#include "framework/degrade.hpp"
#include "framework/protocol.hpp"
#include "framework/rate_limiter.hpp"
#include "policy/policy.hpp"
#include "pow/batch_verifier.hpp"
#include "pow/generator.hpp"
#include "pow/verifier.hpp"
#include "reputation/model.hpp"
#include "reputation/sharded_cache.hpp"

namespace powai::framework {

/// Server configuration.
struct ServerConfig final {
  /// Secret shared between the generator and verifier (non-empty).
  common::Bytes master_secret;

  /// When false the server serves every request immediately — the
  /// no-defense baseline the throttling experiment compares against.
  bool pow_enabled = true;

  /// Memoize reputation scores per IP (EWMA + TTL).
  bool reputation_cache_enabled = true;
  reputation::CacheConfig cache;

  /// Lock stripes for the reputation cache (rounded up to a power of
  /// two); the entry budget in `cache.max_entries` is global.
  std::size_t cache_shards = 16;

  /// Worker threads for the batch entry points (on_request_batch and
  /// on_submission_batch); 0 = hardware concurrency. The pool is created
  /// lazily on the first batch call, so servers that only ever handle
  /// one message at a time never spawn threads.
  std::size_t verify_threads = 0;

  /// Pin verify worker i to CPU i mod hardware_concurrency (Linux only;
  /// silently a no-op elsewhere). A performance knob for dedicated
  /// machines — determinism and totals never depend on it. Default off.
  bool pin_verify_threads = false;

  /// Hard per-IP ceiling on challenge issuance.
  bool rate_limiter_enabled = false;
  RateLimiterConfig rate_limiter;

  pow::VerifierConfig verifier;

  /// Body returned with a successful response.
  std::string resource_body = "resource";

  /// Seed for the per-request policy randomness streams (Policy 3).
  /// Each request draws from common::stream_rng(policy_seed, puzzle_id)
  /// — reproducible from this one seed, lock-free, and independent of
  /// arrival order. Fixed default keeps experiments reproducible.
  std::uint64_t policy_seed = 0x9069'0ce5'7a37'b00fULL;

  /// Deadline substituted for requests that set none (Request.deadline_ms
  /// == 0): effective deadline = arrival time + default_deadline. Zero
  /// (the default) disables the substitution, so requests without a
  /// deadline are never shed — existing behavior is unchanged until a
  /// deployment opts in.
  common::Duration default_deadline{0};

  /// Overload degradation ladder (disabled by default; see degrade.hpp).
  /// Its retry_after_base_ms also seeds the retry_after hint attached to
  /// deadline sheds even while the ladder itself is off.
  DegradeLadderConfig degrade;
};

/// Outcome counters (monotonic). Plain snapshot struct — the live
/// counters inside the server are relaxed atomics; stats() materializes
/// them into this.
struct ServerStats final {
  std::uint64_t requests = 0;
  std::uint64_t challenges_issued = 0;
  std::uint64_t served = 0;
  std::uint64_t served_without_pow = 0;
  std::uint64_t rejected_rate_limited = 0;
  std::uint64_t rejected_malformed = 0;
  std::uint64_t rejected_bad_solution = 0;
  std::uint64_t rejected_expired = 0;
  std::uint64_t rejected_replay = 0;
  std::uint64_t rejected_binding = 0;

  /// Messages refused at the transport for backpressure (async front-end
  /// queue full). Reported by the front end via note_overload() so one
  /// stats block accounts for every wire message's fate.
  std::uint64_t rejected_overload = 0;

  /// Deadline/overload sheds, stage by stage. All deterministic under
  /// the frozen-clock pump (they depend only on sim-time now vs. the
  /// message's deadline and the ladder's deterministic level), so they
  /// participate in the campaign fingerprint.
  std::uint64_t shed_deadline_requests = 0;    ///< expired before scoring
  std::uint64_t shed_deadline_submissions = 0; ///< expired before verification
  std::uint64_t shed_queue_requests = 0;       ///< expired at queue pop
  std::uint64_t shed_queue_submissions = 0;    ///< expired at queue pop
  std::uint64_t shed_degraded_requests = 0;    ///< L2+/L3 issuance shed
  std::uint64_t shed_degraded_submissions = 0; ///< L3 reputation-gated shed
  std::uint64_t difficulty_sum = 0;  ///< over issued challenges

  /// All submissions shed without verification — the work the client
  /// already paid for that the server discarded (campaigns bound it).
  [[nodiscard]] std::uint64_t shed_submissions_total() const {
    return shed_deadline_submissions + shed_queue_submissions +
           shed_degraded_submissions;
  }

  [[nodiscard]] double mean_difficulty() const {
    return challenges_issued > 0
               ? static_cast<double>(difficulty_sum) /
                     static_cast<double>(challenges_issued)
               : 0.0;
  }

  /// Counter-wise difference (for before/after deltas around a run).
  /// Counters are monotonic, so subtracting an earlier snapshot from a
  /// later one never underflows.
  [[nodiscard]] ServerStats operator-(const ServerStats& rhs) const;

  bool operator==(const ServerStats&) const = default;
};

/// Trace of one scoring decision (diagnostics/experiments). Produced
/// per-call by on_request's out-parameter; the server also remembers the
/// most recent one for single-threaded convenience (last_trace()).
struct ScoringTrace final {
  double score = 0.0;
  policy::Difficulty difficulty = 0;
  bool from_cache = false;
};

class PowServer final {
 public:
  /// \p clock, \p model, and \p pol must outlive the server. The model
  /// must already be fitted. Throws std::invalid_argument on an empty
  /// master secret or an unfitted model.
  PowServer(const common::Clock& clock, const reputation::IReputationModel& model,
            const policy::IPolicy& pol, ServerConfig config);

  /// Steps 1-4: returns a Challenge normally; returns a Response directly
  /// when the request is malformed, rate-limited, or PoW is disabled.
  /// Thread-safe. When \p trace is non-null and a challenge is issued,
  /// the scoring decision behind it is written there (the race-free way
  /// to observe traces under concurrent callers).
  [[nodiscard]] std::variant<Challenge, Response> on_request(
      const Request& request, ScoringTrace* trace = nullptr);

  /// Batch form of on_request: scores and issues all requests in
  /// parallel on the server's thread pool (created lazily,
  /// `verify_threads` workers). Result[i] corresponds to requests[i].
  /// Thread-safe, including concurrently with the other entry points.
  [[nodiscard]] std::vector<std::variant<Challenge, Response>>
  on_request_batch(std::span<const Request> requests);

  /// Steps 5-7: verifies and serves. \p observed_ip is the transport-
  /// level source address (empty skips the binding check). Thread-safe.
  [[nodiscard]] Response on_submission(const Submission& submission,
                                       const std::string& observed_ip = {});

  /// Batch form of on_submission: verifies all submissions in parallel
  /// on the server's thread pool. Result[i] corresponds to
  /// submissions[i]. \p observed_ips must be empty (skip the binding
  /// check everywhere) or one address per submission. Throws
  /// std::invalid_argument on a length mismatch. Thread-safe, including
  /// concurrently with the other entry points.
  [[nodiscard]] std::vector<Response> on_submission_batch(
      std::span<const Submission> submissions,
      std::span<const std::string> observed_ips = {});

  /// Records one transport-level backpressure rejection (async front-end
  /// queue full). The server never sees the message itself; the endpoint
  /// reports the refusal here so ServerStats stays the single ledger a
  /// load harness can balance against client-side tallies. Thread-safe.
  void note_overload();

  /// Records one message dropped at queue pop because its deadline had
  /// already passed (the front end answers it with kUnavailable without
  /// handing it to the server). Thread-safe.
  void note_queue_shed(bool is_request);

  /// Feeds one popped message's queue sojourn into the degradation
  /// ladder's pressure signal. \p now_ms is the pop-time clock reading,
  /// \p sojourn_ms how long the message sat queued. Thread-safe.
  void note_queue_sojourn(std::int64_t now_ms, double sojourn_ms);

  /// The effective absolute deadline for a message carrying
  /// \p deadline_ms (0 = unset → arrival + default_deadline, or 0 when
  /// no default is configured). \p arrival_ms is the reference instant.
  [[nodiscard]] std::int64_t effective_deadline_ms(
      std::int64_t deadline_ms, std::int64_t arrival_ms) const;

  /// Level-scaled retry_after hint attached to shed responses.
  [[nodiscard]] std::uint32_t retry_after_hint_ms() const;

  /// Current degradation ladder level (0 when the ladder is disabled).
  [[nodiscard]] int degrade_level() const { return ladder_.level(); }

  /// Ladder snapshot (max level feeds the campaign recovery invariant).
  [[nodiscard]] DegradeStats degrade_stats() const { return ladder_.stats(); }

  /// Folds ladder windows elapsed up to \p now_ms — call at end of run
  /// so trailing calm windows count toward recovery to level 0.
  void poll_degrade(std::int64_t now_ms) { ladder_.poll(now_ms); }

  /// Snapshot of the outcome counters (relaxed loads). Totals are exact
  /// once concurrent callers have returned; mid-flight snapshots are
  /// monotone per counter but not a consistent cut across counters.
  [[nodiscard]] ServerStats stats() const;

  /// Estimated resident footprint of the per-client server structures —
  /// rate-limiter buckets, reputation-cache entries, and the replay
  /// cache. The numerator of the scale harnesses' bytes/client
  /// accounting; exact when quiescent. Thread-safe.
  [[nodiscard]] std::size_t memory_bytes() const;

  /// The most recent scoring decision. Convenient in single-threaded
  /// use; under concurrency the fields are updated atomically but not as
  /// one unit — prefer on_request's per-call \p trace there.
  [[nodiscard]] ScoringTrace last_trace() const;

  [[nodiscard]] const ServerConfig& config() const { return config_; }

  /// The server's notion of now (its injected — possibly skewed — clock).
  /// Endpoints use it to timestamp arrivals so deadline math and the
  /// server's comparisons read the same clock.
  [[nodiscard]] common::TimePoint now() const { return clock_->now(); }
  [[nodiscard]] std::int64_t now_ms() const {
    return common::to_millis(clock_->now());
  }

 private:
  /// Relaxed-atomic mirror of ServerStats: counters increment
  /// independently on the hot path, snapshot() re-materializes the plain
  /// struct.
  struct AtomicStats {
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> challenges_issued{0};
    std::atomic<std::uint64_t> served{0};
    std::atomic<std::uint64_t> served_without_pow{0};
    std::atomic<std::uint64_t> rejected_rate_limited{0};
    std::atomic<std::uint64_t> rejected_malformed{0};
    std::atomic<std::uint64_t> rejected_bad_solution{0};
    std::atomic<std::uint64_t> rejected_expired{0};
    std::atomic<std::uint64_t> rejected_replay{0};
    std::atomic<std::uint64_t> rejected_binding{0};
    std::atomic<std::uint64_t> rejected_overload{0};
    std::atomic<std::uint64_t> shed_deadline_requests{0};
    std::atomic<std::uint64_t> shed_deadline_submissions{0};
    std::atomic<std::uint64_t> shed_queue_requests{0};
    std::atomic<std::uint64_t> shed_queue_submissions{0};
    std::atomic<std::uint64_t> shed_degraded_requests{0};
    std::atomic<std::uint64_t> shed_degraded_submissions{0};
    std::atomic<std::uint64_t> difficulty_sum{0};

    [[nodiscard]] ServerStats snapshot() const;
  };

  /// Folds one verification outcome into the stats and builds the
  /// client-facing Response (shared by single and batch submission).
  Response finalize_submission(std::uint64_t request_id,
                               const common::Status& status);

  /// Pre-verification overload checks for one submission (deadline shed,
  /// L3 reputation gate, L1 effective-TTL). Returns the final Response
  /// when the submission is resolved without verification, std::nullopt
  /// when it should proceed to the verifier. Counts what it sheds.
  [[nodiscard]] std::optional<Response> precheck_submission(
      const Submission& submission, std::int64_t arrival_ms, int level);

  /// The lazily-created pool both batch entry points share.
  common::ThreadPool& ensure_pool();

  /// Builds the kUnavailable shed response with the backoff hint.
  [[nodiscard]] Response shed_response(std::uint64_t request_id,
                                       const char* detail) const;

  const common::Clock* clock_;
  const reputation::IReputationModel* model_;
  const policy::IPolicy* policy_;
  ServerConfig config_;
  pow::PuzzleGenerator generator_;
  pow::Verifier verifier_;
  reputation::ShardedReputationCache cache_;
  RateLimiter rate_limiter_;
  DegradeLadder ladder_;
  std::once_flag pool_once_;
  std::unique_ptr<common::ThreadPool> pool_;  // lazy
  std::once_flag batch_verifier_once_;
  std::unique_ptr<pow::BatchVerifier> batch_verifier_;  // lazy, borrows pool_
  AtomicStats stats_;
  std::atomic<double> trace_score_{0.0};
  std::atomic<policy::Difficulty> trace_difficulty_{0};
  std::atomic<bool> trace_from_cache_{false};
};

}  // namespace powai::framework
