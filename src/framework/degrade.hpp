#pragma once
/// \file degrade.hpp
/// Graduated overload degradation ladder. Under sustained pressure the
/// server walks up a four-level ladder instead of degrading chaotically:
///
///   L0  normal operation
///   L1  raise the puzzle difficulty floor and shrink the effective
///       issued-puzzle TTL (late solutions stop being worth verifying)
///   L2  shed new issuance but keep accepting submissions — a shed
///       submission wastes PoW the client already spent, a shed
///       issuance wastes nothing
///   L3  admission by reputation only: issuance stays shed and
///       submissions are admitted only from clients whose cached
///       reputation score is on the benign side
///
/// Pressure signal: commutative per-window accumulators (arrivals,
/// queue-sojourn sums) folded into EWMAs lazily when a recorded event's
/// timestamp crosses a window boundary. Addition commutes, the fold
/// order follows simulated time, and level transitions depend only on
/// per-window totals — so the ladder's trajectory is bit-deterministic
/// across serial, pooled, and sharded execution (the same property the
/// issuance path has). Sojourn is the wall-deployment signal; the
/// arrival-rate term is the pressure proxy visible under the simulator's
/// frozen-clock pump, where in-queue sojourn is structurally zero.
///
/// Hysteresis: stepping up happens immediately when the pressure EWMA
/// crosses a threshold; stepping down one level requires `calm_windows`
/// consecutive windows below `calm_below`, which bounds the recovery
/// time to at most `levels × calm_windows × window` after a fault
/// clears — the campaign invariant pins exactly that.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>

#include "common/clock.hpp"
#include "policy/policy.hpp"

namespace powai::framework {

/// Ladder tuning. Disabled by default: a server without a configured
/// ladder behaves exactly as before (level pinned at 0).
struct DegradeLadderConfig final {
  bool enabled = false;

  /// Signal window; accumulators fold into the EWMAs once per window.
  common::Duration window = std::chrono::milliseconds(100);

  /// EWMA smoothing per window (0 < alpha <= 1).
  double ewma_alpha = 0.3;

  /// Queue-sojourn EWMA (ms) that saturates the sojourn pressure term
  /// at 1.0.
  double sojourn_ref_ms = 50.0;

  /// Arrival rate (admitted requests/s) that saturates the arrival
  /// pressure term at 1.0; 0 disables the term. Pressure is the max of
  /// the enabled terms.
  double arrival_ref_per_s = 0.0;

  /// Pressure thresholds that step the ladder up to L1/L2/L3.
  double up_l1 = 0.5;
  double up_l2 = 1.0;
  double up_l3 = 2.0;

  /// A window with pressure below this counts as calm; `calm_windows`
  /// consecutive calm windows step the ladder down one level.
  double calm_below = 0.35;
  unsigned calm_windows = 3;

  /// L1+: minimum difficulty issued (0 = no floor).
  policy::Difficulty l1_difficulty_floor = 0;

  /// L1+: effective TTL applied to submissions at verification time
  /// (zero = keep the verifier's configured TTL). Enforced server-side
  /// so the puzzle wire format and MAC are untouched.
  common::Duration l1_ttl = std::chrono::seconds(30);

  /// L3: submissions are admitted only when the client's cached
  /// reputation score is <= this (scores grow with suspicion).
  double l3_admit_max_score = 4.0;

  /// retry_after hint handed to shed clients: base << level.
  std::uint32_t retry_after_base_ms = 250;
};

/// Snapshot of the ladder's state (diagnostics; max_level feeds the
/// campaign recovery invariant).
struct DegradeStats final {
  int level = 0;            ///< current level after the last fold
  int max_level = 0;        ///< high-water level over the run
  std::uint64_t transitions = 0;  ///< level changes (up or down)
  double pressure = 0.0;    ///< pressure EWMA after the last fold
};

class DegradeLadder final {
 public:
  explicit DegradeLadder(DegradeLadderConfig config);

  /// One admitted request at sim/wall time \p now_ms. Folds any elapsed
  /// windows first, then accumulates into the current window.
  void record_arrival(std::int64_t now_ms);

  /// One message popped from the queue after \p sojourn_ms in it.
  void record_sojourn(std::int64_t now_ms, double sojourn_ms);

  /// Folds windows elapsed up to \p now_ms without recording anything —
  /// call at end of run so trailing calm windows count toward recovery.
  void poll(std::int64_t now_ms);

  /// Current ladder level, lock-free (hot-path read).
  [[nodiscard]] int level() const {
    return level_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] DegradeStats stats() const;

  /// Level-scaled backoff hint for shed responses.
  [[nodiscard]] std::uint32_t retry_after_ms() const;

  [[nodiscard]] bool enabled() const { return config_.enabled; }
  [[nodiscard]] const DegradeLadderConfig& config() const { return config_; }

 private:
  /// Folds complete windows strictly before \p epoch (caller holds mu_).
  void fold_locked(std::int64_t epoch);

  DegradeLadderConfig config_;
  std::int64_t window_ms_ = 100;

  mutable std::mutex mu_;
  std::int64_t cur_epoch_ = 0;        // window index accumulating now
  std::uint64_t win_arrivals_ = 0;
  double win_sojourn_sum_ms_ = 0.0;
  std::uint64_t win_sojourn_count_ = 0;
  double sojourn_ewma_ms_ = 0.0;
  double arrival_ewma_per_s_ = 0.0;
  double pressure_ = 0.0;
  unsigned calm_count_ = 0;
  std::uint64_t transitions_ = 0;

  std::atomic<int> level_{0};
  std::atomic<int> max_level_{0};
};

}  // namespace powai::framework
