#include "framework/request_queue.hpp"

#include <algorithm>
#include <stdexcept>

namespace powai::framework {

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("RequestQueue: capacity must be > 0");
  }
}

bool RequestQueue::try_push(WireMessage message) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) {
      ++overflows_;
      return false;
    }
    items_.push_back(std::move(message));
    ++accepted_;
    high_water_ = std::max(high_water_, items_.size());
  }
  not_empty_.notify_one();
  return true;
}

std::size_t RequestQueue::pop_up_to(std::size_t max,
                                    std::vector<WireMessage>& out) {
  if (max == 0) {
    throw std::invalid_argument("RequestQueue::pop_up_to: max must be > 0");
  }
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
  const std::size_t n = std::min(max, items_.size());
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(std::move(items_.front()));
    items_.pop_front();
  }
  in_flight_ += n;
  return n;
}

void RequestQueue::complete(std::size_t n) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (n > in_flight_) {
      throw std::logic_error("RequestQueue::complete: more than in flight");
    }
    in_flight_ -= n;
    completed_ += n;
  }
  // A closer may be waiting for in-flight work to land (not a blocking
  // API here, but AsyncFrontEnd's pump waits on busy() transitions).
  not_empty_.notify_all();
}

void RequestQueue::close() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
}

std::size_t RequestQueue::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

std::size_t RequestQueue::in_flight() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

bool RequestQueue::busy() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return !items_.empty() || in_flight_ > 0;
}

std::uint64_t RequestQueue::accepted() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return accepted_;
}

std::uint64_t RequestQueue::completed() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return completed_;
}

std::uint64_t RequestQueue::overflows() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return overflows_;
}

std::size_t RequestQueue::high_water() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return high_water_;
}

}  // namespace powai::framework
