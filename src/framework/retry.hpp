#pragma once
/// \file retry.hpp
/// Client-side retry/timeout/backoff policy for the wire clients. The
/// overload-control loop has two halves: the server sheds work it
/// cannot finish in time (deadline checks + degradation ladder, see
/// server.hpp / degrade.hpp), and the client turns silence or an
/// explicit kUnavailable into a bounded, deterministic retry schedule
/// instead of either hanging forever or hammering the server.
///
/// Semantics (WireClient / WireClientPool with a policy installed):
/// - Every attempt reuses the *same request id*, so server-side
///   idempotent issuance (keyed per-id derivation) makes a retry
///   converge on the identical challenge — retries can never double
///   count or double-serve.
/// - A per-attempt timeout bounds request → response. Timer expiry
///   resends after a capped exponential backoff; after max_attempts the
///   caller's callback fires exactly once with kTimeout.
/// - A kUnavailable response (shed, overflow, or queue-expired) is
///   retried internally, honouring the server's retry_after_ms hint
///   (the wait is max(backoff, hint)); when attempts run out the last
///   response is delivered as-is.
/// - Backoff jitter is drawn from common::stream_rng keyed by
///   (client, request id, attempt) — a pure function of the tuple, so
///   whole retry schedules replay bit-for-bit from the policy seed no
///   matter how many clients interleave.
///
/// With a policy enabled a request dropped by the link is *still*
/// registered and its timer armed, which closes the long-standing
/// liveness hole where send_request returned 0 and the callback never
/// fired (transport.hpp used to tell callers to "pair with a timeout";
/// now the client owns one).

#include <cstdint>
#include <string>

#include "common/clock.hpp"
#include "common/rng.hpp"

namespace powai::framework {

/// Knobs for the client retry loop. Default-constructed = disabled, so
/// existing single-shot behaviour is untouched until a caller opts in.
struct RetryPolicy final {
  /// Master switch. When false every other field is ignored.
  bool enabled = false;

  /// Per-attempt timeout: request sent → response expected within this
  /// (simulated time). Expiry triggers a resend or, on the last
  /// attempt, a synthetic kTimeout delivered to the caller.
  common::Duration timeout = std::chrono::seconds(2);

  /// Total send attempts (first try included). Must be >= 1.
  std::size_t max_attempts = 4;

  /// Backoff before attempt k+1 is base * 2^(k-1), capped below.
  common::Duration backoff_base = std::chrono::milliseconds(100);
  common::Duration backoff_cap = std::chrono::seconds(5);

  /// Uniform jitter fraction: the wait is scaled by a factor drawn
  /// from [1 - jitter_frac, 1 + jitter_frac]. Zero = deterministic
  /// un-jittered schedule.
  double jitter_frac = 0.2;

  /// Seed for the jitter stream (combined with client + request id +
  /// attempt, see retry_backoff) — one number reproduces every
  /// client's whole schedule.
  std::uint64_t jitter_seed = 0;

  /// When positive, requests are stamped with an absolute deadline of
  /// send-time + this, propagated over the wire so every server stage
  /// can shed the request once it cannot matter any more. Zero = leave
  /// the deadline to the server's default_deadline.
  common::Duration request_deadline{0};
};

/// Stable 64-bit key for a client identity string (its IP); FNV-1a, so
/// the jitter stream derivation is platform-independent.
[[nodiscard]] std::uint64_t retry_client_key(const std::string& ip);

/// The wait before attempt `attempt + 1` (attempt counts completed
/// tries, so the first retry passes 1): capped exponential backoff with
/// multiplicative jitter from stream_rng(jitter_seed, mix(client_key,
/// request_id, attempt)). Pure function of its arguments.
[[nodiscard]] common::Duration retry_backoff(const RetryPolicy& policy,
                                             std::uint64_t client_key,
                                             std::uint64_t request_id,
                                             std::size_t attempt);

}  // namespace powai::framework
