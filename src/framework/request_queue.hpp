#pragma once
/// \file request_queue.hpp
/// Bounded MPMC queue between the wire and the server: transports
/// enqueue decoded messages (producers), the async front end drains
/// them in batches (consumers). The bound is the backpressure point —
/// try_push failing is the signal to answer the sender with an explicit
/// overload response instead of buffering without limit, which is the
/// defined behavior under the paper's flooding adversary.
///
/// Accounting is designed so "no message is silently lost" is checkable:
/// a popped batch stays counted (in_flight) until the consumer calls
/// complete(), so busy() == false guarantees every accepted message has
/// been fully processed, not merely dequeued.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <variant>
#include <vector>

#include "common/clock.hpp"
#include "framework/protocol.hpp"

namespace powai::framework {

/// One decoded wire message awaiting service, tagged with its
/// transport-level source (the address responses go back to, and the
/// address puzzles are bound to) and its deadline envelope.
struct WireMessage final {
  std::string from;
  std::variant<Request, Submission> payload;

  /// Effective absolute deadline in server-clock milliseconds (0 =
  /// none). Stamped by the endpoint at enqueue; the drain drops the
  /// message at pop time once it has passed — expired work never
  /// reaches the server.
  std::int64_t deadline_ms = 0;

  /// Server-clock arrival instant. Pop time minus this is the queue
  /// sojourn fed to the degradation ladder (deterministic under the
  /// frozen-clock pump: structurally zero in simulation, real under a
  /// wall clock).
  common::TimePoint enqueued_at{};

  /// Wall-clock arrival instant for the bench-facing sojourn
  /// percentiles. Nondeterministic by nature; never fingerprinted.
  std::chrono::steady_clock::time_point wall_enqueued_at{};
};

class RequestQueue final {
 public:
  /// \p capacity bounds queued (not yet popped) messages; must be > 0.
  explicit RequestQueue(std::size_t capacity);

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Enqueues \p message unless the queue is at capacity or closed;
  /// false means the caller must answer the sender itself (overload).
  /// Thread-safe; never blocks.
  [[nodiscard]] bool try_push(WireMessage message);

  /// Blocks until at least one message is queued (or the queue is
  /// closed), then moves up to \p max messages into \p out and returns
  /// the count. Returns 0 only when the queue is closed *and* drained.
  /// Popped messages remain counted as in-flight until complete().
  /// Thread-safe.
  std::size_t pop_up_to(std::size_t max, std::vector<WireMessage>& out);

  /// Marks \p n previously popped messages fully processed. Thread-safe.
  /// Throws std::logic_error when n exceeds the in-flight count — an
  /// accounting bug, never a load condition.
  void complete(std::size_t n);

  /// Closes the queue: subsequent try_push fails, blocked poppers wake.
  /// Idempotent. Thread-safe.
  void close();

  /// Queued (accepted, not yet popped) messages. Thread-safe.
  [[nodiscard]] std::size_t size() const;

  /// Popped but not yet complete()d messages. Thread-safe.
  [[nodiscard]] std::size_t in_flight() const;

  /// True while any accepted message is queued or in flight — the
  /// "front end still owes responses" predicate the pump waits on.
  /// Thread-safe.
  [[nodiscard]] bool busy() const;

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Messages accepted by try_push so far. Thread-safe.
  [[nodiscard]] std::uint64_t accepted() const;

  /// Messages fully processed (cumulative complete() total). Thread-safe.
  /// Shutdown conservation: once the queue is closed and every consumer
  /// has drained — pop_up_to returned 0 and the final complete() landed —
  /// accepted() == completed() exactly; a close() racing an in-flight
  /// batch must never strand the batch's completion (the invariant the
  /// shutdown hammer test in tests/test_request_queue.cpp pins).
  [[nodiscard]] std::uint64_t completed() const;

  /// try_push calls rejected at capacity (the overload count seen from
  /// the queue's side). Thread-safe.
  [[nodiscard]] std::uint64_t overflows() const;

  /// Largest queue depth observed (diagnostics for sizing). Thread-safe.
  [[nodiscard]] std::size_t high_water() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::deque<WireMessage> items_;
  std::size_t in_flight_ = 0;
  bool closed_ = false;
  std::uint64_t accepted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t overflows_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace powai::framework
