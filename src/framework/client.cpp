#include "framework/client.hpp"

#include <chrono>

namespace powai::framework {

PowClient::PowClient(std::string ip, ClientConfig config)
    : ip_(std::move(ip)), config_(config) {}

Request PowClient::make_request(const std::string& path,
                                const features::FeatureVector& features) {
  Request request;
  request.client_ip = ip_;
  request.path = path;
  request.features = features;
  request.request_id = next_request_id_++;
  return request;
}

PowClient::SolveOutcome PowClient::solve(const Challenge& challenge) const {
  pow::SolveOptions options;
  options.threads = config_.solver_threads;
  options.max_attempts = config_.max_attempts;
  const pow::SolveResult result = solver_.solve(challenge.puzzle, options);

  SolveOutcome outcome;
  outcome.attempts = result.attempts;
  outcome.solved = result.found;
  outcome.submission.request_id = challenge.request_id;
  outcome.submission.puzzle = challenge.puzzle;
  outcome.submission.solution = result.solution;
  return outcome;
}

RoundTrip PowClient::run(PowServer& server, const std::string& path,
                         const features::FeatureVector& features) {
  RoundTrip trip;
  const Request request = make_request(path, features);
  trip.request_id = request.request_id;
  auto first = server.on_request(request);

  if (std::holds_alternative<Response>(first)) {
    trip.response = std::get<Response>(std::move(first));
    trip.served = trip.response.status == common::ErrorCode::kOk;
    return trip;
  }

  const Challenge& challenge = std::get<Challenge>(first);
  trip.difficulty = challenge.puzzle.difficulty;
  trip.challenged = true;
  trip.puzzle = challenge.puzzle;

  const auto t0 = std::chrono::steady_clock::now();
  const SolveOutcome outcome = solve(challenge);
  const auto t1 = std::chrono::steady_clock::now();
  trip.attempts = outcome.attempts;
  trip.solve_wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();

  if (!outcome.solved) {
    trip.response = Response{request.request_id, common::ErrorCode::kTimeout,
                             "attempt budget exhausted"};
    return trip;
  }

  trip.response = server.on_submission(outcome.submission, ip_);
  trip.served = trip.response.status == common::ErrorCode::kOk;
  return trip;
}

}  // namespace powai::framework
