#pragma once
/// \file protocol.hpp
/// Wire protocol for the seven-step exchange of Fig. 1:
///
///   client → server  Request     (1) HTTP request + observed features
///   server → client  Challenge   (4) puzzle to solve
///   client → server  Submission  (5) puzzle + claimed solution
///   server → client  Response    (7) resource, or an error code
///
/// The Submission echoes the full puzzle so the server stays stateless
/// between steps 4 and 5 (the puzzle is self-authenticating via its MAC).
/// All messages use a 1-byte type tag followed by length-prefixed fields.

#include <cstdint>
#include <optional>
#include <string>
#include <variant>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "features/feature_vector.hpp"
#include "pow/puzzle.hpp"

namespace powai::framework {

/// Message type tags (wire-stable).
enum class MessageType : std::uint8_t {
  kRequest = 1,
  kChallenge = 2,
  kSubmission = 3,
  kResponse = 4,
};

/// Step 1: the client's HTTP request. `features` models what the
/// server-side traffic observer extracted for this source IP (see
/// DESIGN.md §2 on the feature substitution).
struct Request final {
  std::string client_ip;
  std::string path = "/";
  features::FeatureVector features;
  std::uint64_t request_id = 0;  ///< client-chosen correlation id
  /// Absolute deadline in server sim-time milliseconds (0 = none set;
  /// the server substitutes `ServerConfig::default_deadline`). Work
  /// whose deadline has passed is shed at every stage — queue pop,
  /// pre-scoring, pre-verification — instead of being served late.
  std::int64_t deadline_ms = 0;

  [[nodiscard]] common::Bytes serialize() const;
};

/// Step 4: the challenge carrying the puzzle.
struct Challenge final {
  std::uint64_t request_id = 0;
  pow::Puzzle puzzle;

  [[nodiscard]] common::Bytes serialize() const;
};

/// Step 5: puzzle echoed back with the claimed solution.
struct Submission final {
  std::uint64_t request_id = 0;
  pow::Puzzle puzzle;
  pow::Solution solution;
  /// Absolute deadline echoed from the request (0 = none): a solution
  /// whose client already gave up is shed before verification.
  std::int64_t deadline_ms = 0;

  [[nodiscard]] common::Bytes serialize() const;
};

/// Step 7: the final outcome.
struct Response final {
  std::uint64_t request_id = 0;
  common::ErrorCode status = common::ErrorCode::kOk;  ///< kOk = resource served
  std::string body;  ///< resource content, or error detail
  /// Overload hint: how long the client should back off before
  /// retrying (0 = no hint). Only meaningful with kUnavailable.
  std::uint32_t retry_after_ms = 0;

  [[nodiscard]] common::Bytes serialize() const;
};

/// Any protocol message (decode result).
using Message = std::variant<Request, Challenge, Submission, Response>;

/// Decodes one message; std::nullopt on malformed input of any kind.
[[nodiscard]] std::optional<Message> decode(common::BytesView wire);

/// The tag a wire buffer claims to carry (std::nullopt if empty).
[[nodiscard]] std::optional<MessageType> peek_type(common::BytesView wire);

}  // namespace powai::framework
