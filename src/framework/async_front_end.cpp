#include "framework/async_front_end.hpp"

#include <algorithm>
#include <utility>
#include <variant>

namespace powai::framework {

AsyncFrontEnd::AsyncFrontEnd(netsim::EventLoop& loop, netsim::Network& network,
                             std::string host_name, PowServer& server,
                             AsyncFrontEndConfig config)
    : loop_(&loop),
      network_(&network),
      host_name_(std::move(host_name)),
      server_(&server),
      config_(config),
      queue_(config.queue_capacity),
      started_(!config.start_paused),
      drain_([this] { drain_loop(); }) {}

AsyncFrontEnd::~AsyncFrontEnd() {
  queue_.close();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    started_ = true;  // a paused drain must wake to observe the close
  }
  cv_.notify_all();
  drain_.join();
}

void AsyncFrontEnd::start() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    started_ = true;
  }
  cv_.notify_all();
}

FrontEndStats AsyncFrontEnd::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void AsyncFrontEnd::drain_loop() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return started_; });
  }
  std::vector<WireMessage> batch;
  for (;;) {
    batch.clear();
    if (queue_.pop_up_to(config_.max_batch, batch) == 0) return;  // closed
    process_batch(std::move(batch));
  }
}

void AsyncFrontEnd::process_batch(std::vector<WireMessage>&& batch) {
  const std::size_t n = batch.size();

  // Partition while remembering each message's slot so responses go out
  // in arrival order regardless of how the two batch calls interleave.
  std::vector<Request> requests;
  std::vector<std::size_t> request_slots;
  std::vector<Submission> submissions;
  std::vector<std::string> observed_ips;
  std::vector<std::size_t> submission_slots;
  for (std::size_t i = 0; i < n; ++i) {
    if (auto* request = std::get_if<Request>(&batch[i].payload)) {
      request_slots.push_back(i);
      requests.push_back(std::move(*request));
    } else {
      auto& submission = std::get<Submission>(batch[i].payload);
      submission_slots.push_back(i);
      observed_ips.push_back(batch[i].from);
      submissions.push_back(std::move(submission));
    }
  }

  // Fan out on the server's shared pool (this thread participates via
  // parallel_for), then serialize every reply into its arrival slot.
  std::vector<std::pair<std::string, common::Bytes>> outgoing(n);
  if (!requests.empty()) {
    auto outcomes = server_->on_request_batch(requests);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      const std::size_t slot = request_slots[i];
      if (const auto* challenge = std::get_if<Challenge>(&outcomes[i])) {
        outgoing[slot] = {batch[slot].from, challenge->serialize()};
      } else {
        outgoing[slot] = {batch[slot].from,
                          std::get<Response>(outcomes[i]).serialize()};
      }
    }
  }
  if (!submissions.empty()) {
    auto responses = server_->on_submission_batch(submissions, observed_ips);
    for (std::size_t i = 0; i < responses.size(); ++i) {
      const std::size_t slot = submission_slots[i];
      outgoing[slot] = {batch[slot].from, responses[i].serialize()};
    }
  }

  // Route completions back onto the loop: sends happen on the loop
  // thread at the simulated instant the batch was accepted, so link
  // modelling and wire determinism are untouched by pool threads.
  loop_->post([network = network_, host = host_name_,
               outgoing = std::move(outgoing)]() mutable {
    for (auto& [to, payload] : outgoing) {
      (void)network->send(host, to, std::move(payload));
    }
  });
  queue_.complete(n);

  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.batches;
    stats_.messages += n;
    stats_.requests += request_slots.size();
    stats_.submissions += submission_slots.size();
    stats_.largest_batch = std::max(stats_.largest_batch, n);
  }
  cv_.notify_all();
}

std::size_t AsyncFrontEnd::run_until_idle() {
  start();
  std::size_t executed = 0;
  for (;;) {
    // Settle the current instant: keep executing due events (including
    // posted completions) and waiting on the drain until the front end
    // owes nothing for this timestamp. The clock does not move here.
    for (;;) {
      executed += loop_->run_until(loop_->now());
      std::unique_lock<std::mutex> lock(mu_);
      if (!queue_.busy() && !loop_->has_posted()) break;
      cv_.wait(lock,
               [this] { return loop_->has_posted() || !queue_.busy(); });
    }
    // Everything at this instant is settled; hop to the next one.
    const auto next = loop_->next_event_time();
    if (!next) return executed;
    executed += loop_->run_until(*next);
  }
}

}  // namespace powai::framework
