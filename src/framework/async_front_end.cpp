#include "framework/async_front_end.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <variant>

#include "common/hashing.hpp"
#include "common/thread_pool.hpp"

namespace powai::framework {

namespace {
/// FNV-1a over the address string: a stable, platform-independent hash
/// so shard assignment (and therefore batch diagnostics) reproduce
/// across runs. std::hash would work but is unspecified per platform.
std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}
}  // namespace

void SojournHistogram::record_ms(double ms) {
  ++count;
  sum_ms += ms;
  const double us = ms * 1000.0;
  std::size_t idx = 0;
  if (us >= 1.0) {
    const auto us_int = static_cast<std::uint64_t>(us);
    idx = std::min<std::size_t>(kBuckets - 1, std::bit_width(us_int));
  }
  ++buckets[idx];
}

double SojournHistogram::percentile_ms(double p) const {
  if (count == 0) return 0.0;
  const double clamped = std::clamp(p, 0.0, 1.0);
  const auto rank =
      static_cast<std::uint64_t>(clamped * static_cast<double>(count - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (seen > rank) {
      if (i == 0) return 0.0005;  // sub-microsecond bucket midpoint
      // Bucket i covers [2^(i-1), 2^i) µs; report the geometric mid.
      const double lo_us = std::ldexp(1.0, static_cast<int>(i) - 1);
      return lo_us * 1.41421356237 / 1000.0;
    }
  }
  return 0.0;  // unreachable: counts sum to `count`
}

AsyncFrontEnd::AsyncFrontEnd(netsim::EventLoop& loop, netsim::Network& network,
                             std::string host_name, PowServer& server,
                             AsyncFrontEndConfig config)
    : loop_(&loop),
      network_(&network),
      host_name_(std::move(host_name)),
      server_(&server),
      config_(config),
      started_(!config.start_paused) {
  const std::size_t shards = std::max<std::size_t>(1, config_.drain_shards);
  if (config_.queue_capacity < shards) {
    throw std::invalid_argument(
        "AsyncFrontEnd: queue_capacity must be >= drain_shards");
  }
  queues_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    // Exact split: shard capacities sum to queue_capacity, so the
    // global backpressure bound is unchanged by sharding.
    queues_.push_back(std::make_unique<RequestQueue>(
        common::split_slice(config_.queue_capacity, shards, i)));
  }
  if (config_.watchdog_stall > common::Duration::zero()) {
    watchdog_ = std::make_unique<Watchdog>(
        WatchdogConfig{config_.watchdog_stall, config_.watchdog_poll});
    for (std::size_t i = 0; i < shards; ++i) {
      (void)watchdog_->register_source("drain-" + std::to_string(i));
    }
    watchdog_->set_busy_probe([this] { return !idle(); });
    watchdog_->start();
  }
  drains_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    drains_.emplace_back([this, i] { drain_loop(i); });
    if (config_.pin_drains) {
      // Best-effort (see ThreadPool::pin_to_cpu): an unpinnable drain
      // just floats, it never fails construction.
      (void)common::ThreadPool::pin_to_cpu(drains_.back(), i);
    }
  }
}

AsyncFrontEnd::~AsyncFrontEnd() {
  // Stop the watchdog first: its busy probe reads the queues.
  if (watchdog_) watchdog_->stop();
  for (auto& queue : queues_) queue->close();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    started_ = true;  // paused drains must wake to observe the close
  }
  cv_.notify_all();
  for (auto& drain : drains_) drain.join();
}

std::size_t AsyncFrontEnd::shard_for(const std::string& from) const {
  return static_cast<std::size_t>(common::mix64(fnv1a64(from))) %
         queues_.size();
}

bool AsyncFrontEnd::try_push(WireMessage message) {
  const std::size_t shard = shard_for(message.from);
  return queues_[shard]->try_push(std::move(message));
}

void AsyncFrontEnd::start() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    started_ = true;
  }
  cv_.notify_all();
}

bool AsyncFrontEnd::idle() const {
  for (const auto& queue : queues_) {
    if (queue->busy()) return false;
  }
  return true;
}

std::size_t AsyncFrontEnd::queued() const {
  std::size_t total = 0;
  for (const auto& queue : queues_) total += queue->size();
  return total;
}

std::size_t AsyncFrontEnd::in_flight() const {
  std::size_t total = 0;
  for (const auto& queue : queues_) total += queue->in_flight();
  return total;
}

std::uint64_t AsyncFrontEnd::overflows() const {
  std::uint64_t total = 0;
  for (const auto& queue : queues_) total += queue->overflows();
  return total;
}

std::uint64_t AsyncFrontEnd::accepted() const {
  std::uint64_t total = 0;
  for (const auto& queue : queues_) total += queue->accepted();
  return total;
}

std::uint64_t AsyncFrontEnd::completed() const {
  std::uint64_t total = 0;
  for (const auto& queue : queues_) total += queue->completed();
  return total;
}

void AsyncFrontEnd::set_fault_hooks(FrontEndFaultHooks hooks) {
  const std::lock_guard<std::mutex> lock(mu_);
  hooks_ = std::move(hooks);
}

FrontEndStats AsyncFrontEnd::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

WatchdogStats AsyncFrontEnd::watchdog_stats() const {
  return watchdog_ ? watchdog_->stats() : WatchdogStats{};
}

void AsyncFrontEnd::drain_loop(std::size_t shard) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return started_; });
  }
  RequestQueue& queue = *queues_[shard];
  std::vector<WireMessage> batch;
  for (std::uint64_t batch_index = 0;; ++batch_index) {
    batch.clear();
    if (queue.pop_up_to(config_.max_batch, batch) == 0) return;  // closed
    if (watchdog_) watchdog_->beat(shard);
    {
      // Copy the hook out so a stall does not hold the stats lock.
      std::function<void(std::size_t, std::uint64_t)> before;
      {
        const std::lock_guard<std::mutex> lock(mu_);
        before = hooks_.before_batch;
      }
      if (before) before(shard, batch_index);
    }
    process_batch(queue, std::move(batch), shard);
    if (watchdog_) watchdog_->beat(shard);
  }
}

void AsyncFrontEnd::process_batch(RequestQueue& queue,
                                  std::vector<WireMessage>&& batch,
                                  std::size_t shard) {
  const std::size_t n = batch.size();
  // Pop-time overload control: measure each message's queue sojourn
  // (sim-time for the ladder signal, wall-time for the bench
  // percentiles) and shed entries whose deadline already passed — they
  // are answered kUnavailable right here, without any server work.
  const std::int64_t pop_ms = server_->now_ms();
  const auto wall_now = std::chrono::steady_clock::now();
  std::vector<double> wall_sojourns_ms;
  wall_sojourns_ms.reserve(n);
  std::size_t expired_dropped = 0;

  // Partition while remembering each message's slot so responses go out
  // in arrival order regardless of how the two batch calls interleave.
  std::vector<Request> requests;
  std::vector<std::size_t> request_slots;
  std::vector<Submission> submissions;
  std::vector<std::string> observed_ips;
  std::vector<std::size_t> submission_slots;
  std::vector<std::pair<std::string, common::Bytes>> outgoing(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (batch[i].enqueued_at != common::TimePoint{}) {
      server_->note_queue_sojourn(
          pop_ms, static_cast<double>(
                      pop_ms - common::to_millis(batch[i].enqueued_at)));
    }
    if (batch[i].wall_enqueued_at !=
        std::chrono::steady_clock::time_point{}) {
      wall_sojourns_ms.push_back(
          std::chrono::duration<double, std::milli>(
              wall_now - batch[i].wall_enqueued_at)
              .count());
    }
    const bool is_request = std::holds_alternative<Request>(batch[i].payload);
    // Shed only entries whose deadline passed *while queued*: a message
    // that arrived already expired still flows to the server, which
    // sheds it itself (shed_deadline_*) — exactly what the synchronous
    // path does, so async and sync ledgers stay bit-identical. Under
    // the frozen-clock simulator pop == push instant and this branch is
    // structurally unreachable; it exists for wall-clock deployments
    // (and is unit-tested with hand-stamped envelopes).
    if (batch[i].deadline_ms != 0 && pop_ms > batch[i].deadline_ms &&
        batch[i].deadline_ms >= common::to_millis(batch[i].enqueued_at)) {
      server_->note_queue_shed(is_request);
      ++expired_dropped;
      Response nak;
      nak.request_id =
          is_request ? std::get<Request>(batch[i].payload).request_id
                     : std::get<Submission>(batch[i].payload).request_id;
      nak.status = common::ErrorCode::kUnavailable;
      nak.body = "deadline expired in queue";
      nak.retry_after_ms = server_->retry_after_hint_ms();
      outgoing[i] = {batch[i].from, nak.serialize()};
      continue;
    }
    if (auto* request = std::get_if<Request>(&batch[i].payload)) {
      request_slots.push_back(i);
      requests.push_back(std::move(*request));
    } else {
      auto& submission = std::get<Submission>(batch[i].payload);
      submission_slots.push_back(i);
      observed_ips.push_back(batch[i].from);
      submissions.push_back(std::move(submission));
    }
  }

  // Fan out on the server's shared pool (this thread participates via
  // parallel_for), then serialize every reply into its arrival slot.
  // Shards share that one pool, so drain_shards scales dispatch without
  // multiplying worker threads.
  if (!requests.empty()) {
    auto outcomes = server_->on_request_batch(requests);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      const std::size_t slot = request_slots[i];
      if (const auto* challenge = std::get_if<Challenge>(&outcomes[i])) {
        outgoing[slot] = {batch[slot].from, challenge->serialize()};
      } else {
        outgoing[slot] = {batch[slot].from,
                          std::get<Response>(outcomes[i]).serialize()};
      }
    }
  }
  if (!submissions.empty()) {
    {
      // Slow-verify fault seam; copy the hook out so a stall does not
      // hold the stats lock.
      std::function<void(std::size_t, std::size_t)> before;
      {
        const std::lock_guard<std::mutex> lock(mu_);
        before = hooks_.before_verify;
      }
      if (before) before(shard, submissions.size());
    }
    auto responses = server_->on_submission_batch(submissions, observed_ips);
    for (std::size_t i = 0; i < responses.size(); ++i) {
      const std::size_t slot = submission_slots[i];
      outgoing[slot] = {batch[slot].from, responses[i].serialize()};
    }
  }

  // Route completions back onto the loop: sends happen on the loop
  // thread at the simulated instant the batch was accepted, so link
  // modelling and wire determinism are untouched by pool threads.
  loop_->post([network = network_, host = host_name_,
               outgoing = std::move(outgoing)]() mutable {
    for (auto& [to, payload] : outgoing) {
      (void)network->send(host, to, std::move(payload));
    }
  });
  queue.complete(n);

  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.batches;
    stats_.messages += n;
    stats_.requests += request_slots.size();
    stats_.submissions += submission_slots.size();
    stats_.expired_dropped += expired_dropped;
    stats_.largest_batch = std::max(stats_.largest_batch, n);
    for (const double ms : wall_sojourns_ms) stats_.sojourn.record_ms(ms);
  }
  cv_.notify_all();
}

std::size_t AsyncFrontEnd::run_until_idle() {
  start();
  std::size_t executed = 0;
  for (;;) {
    // Settle the current instant: keep executing due events (including
    // posted completions) and waiting on the drains until no shard owes
    // anything for this timestamp. The clock does not move here. The
    // loop thread is the only producer, so queues can only go busy →
    // idle while it waits — the conjunction over shards is race-free.
    for (;;) {
      executed += loop_->run_until(loop_->now());
      std::unique_lock<std::mutex> lock(mu_);
      if (idle() && !loop_->has_posted()) break;
      cv_.wait(lock, [this] { return loop_->has_posted() || idle(); });
    }
    // Everything at this instant is settled; hop to the next one.
    const auto next = loop_->next_event_time();
    if (!next) return executed;
    executed += loop_->run_until(*next);
  }
}

}  // namespace powai::framework
