#pragma once
/// \file transport.hpp
/// Glue between the framework and the simulated network: the full
/// protocol (encoded bytes, not function calls) running over
/// netsim::Network hosts. Used by the integration tests and the
/// end-to-end wire bench; production deployments would swap the netsim
/// transport for sockets without touching PowServer/protocol code.
///
/// Convention: a host's network name is its IP address in dotted-quad
/// form, so the transport-level source of a message doubles as the
/// observed client IP for puzzle binding.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "features/ip_address.hpp"
#include "framework/client.hpp"
#include "framework/protocol.hpp"
#include "framework/request_queue.hpp"
#include "framework/retry.hpp"
#include "framework/server.hpp"
#include "netsim/event_loop.hpp"
#include "netsim/network.hpp"
#include "pow/solver.hpp"

namespace powai::framework {

class AsyncFrontEnd;

/// Server side: registers a host and answers protocol messages with the
/// wrapped PowServer. Malformed payloads get a kMalformedMessage
/// response (request id 0, since none could be parsed).
///
/// Two service modes:
/// - **Synchronous** (3-arg constructor): each decoded message is handed
///   to the server inline on the event-loop thread — simple, serial, the
///   baseline the async path is checked against.
/// - **Asynchronous** (constructor taking an AsyncFrontEnd): decoded
///   messages are routed into the front end's sharded queues
///   (partitioned by source IP) for its drain threads to batch onto the
///   server's thread pool. When the source's shard is full the endpoint
///   answers kUnavailable immediately (explicit backpressure) and
///   reports the refusal via PowServer::note_overload().
class ServerEndpoint final {
 public:
  /// Synchronous mode. \p network and \p server must outlive the
  /// endpoint. Registers host \p host_name on construction.
  ServerEndpoint(netsim::Network& network, std::string host_name,
                 PowServer& server);

  /// Asynchronous mode: decoded messages go to \p front_end, which must
  /// outlive the endpoint too.
  ServerEndpoint(netsim::Network& network, std::string host_name,
                 PowServer& server, AsyncFrontEnd& front_end);

  ServerEndpoint(const ServerEndpoint&) = delete;
  ServerEndpoint& operator=(const ServerEndpoint&) = delete;

  [[nodiscard]] const std::string& host_name() const { return host_name_; }

  /// Messages whose decode failed (diagnostics). Atomic so monitoring
  /// threads may read it while completions run on pool threads.
  [[nodiscard]] std::uint64_t malformed_count() const {
    return malformed_.load(std::memory_order_relaxed);
  }

 private:
  void on_message(const std::string& from, common::BytesView payload);

  /// Stamps the deadline envelope (arrival instants + effective
  /// deadline, all on the server's clock) onto \p message.
  void stamp_envelope(WireMessage& message, std::int64_t deadline_ms) const;

  /// Async mode: pushes \p message, or sends the overload NAK for
  /// \p request_id back to \p from when the source's shard is full.
  void enqueue(const std::string& from, std::uint64_t request_id,
               WireMessage message);

  netsim::Network* network_;
  std::string host_name_;
  PowServer* server_;
  AsyncFrontEnd* front_end_ = nullptr;  ///< non-null = asynchronous mode
  std::atomic<std::uint64_t> malformed_{0};
};

/// Client side: drives request → challenge → solve → submission →
/// response over the wire. Solving is performed with the real solver,
/// but the *time* it occupies is modelled (attempts × hash_cost)
/// and scheduled on the event loop, so simulated latencies are
/// hardware-independent.
class WireClient final {
 public:
  /// Invoked with the final response and the request→response latency.
  using Callback = std::function<void(const Response&, common::Duration)>;

  /// \p loop and \p network must outlive the client. Registers host
  /// \p ip on construction. \p hash_cost_us is this client's modelled
  /// per-hash cost.
  WireClient(netsim::EventLoop& loop, netsim::Network& network, std::string ip,
             std::string server_host, double hash_cost_us = 38.0);

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  /// Sends one request; \p done fires when the request resolves.
  ///
  /// Without a retry policy (the default): \p done fires when the
  /// response arrives; returns 0 if the link dropped the request, in
  /// which case \p done never fires (legacy single-shot mode — pair
  /// with a timeout in callers that need liveness).
  ///
  /// With set_retry_policy({.enabled = true, ...}): \p done fires
  /// *exactly once* for every send_request, even when the link drops
  /// every packet — a dropped or unanswered attempt is retried with
  /// capped exponential backoff and, after max_attempts, resolves with
  /// a synthetic kTimeout. kUnavailable responses (server shedding) are
  /// retried internally honouring the retry_after_ms hint. All attempts
  /// reuse the same request id, so server-side idempotent issuance
  /// guarantees a retried request is served at most once.
  std::uint64_t send_request(const std::string& path,
                             const features::FeatureVector& features,
                             Callback done);

  /// Installs the retry/timeout/backoff policy (see retry.hpp). Call
  /// before the first send_request; replacing the policy mid-flight is
  /// undefined. Requests are stamped with policy.request_deadline.
  void set_retry_policy(RetryPolicy policy);

  /// Invoked on the loop thread for every challenge this client accepts
  /// (before solving). History capture hook for the determinism
  /// harnesses; pass an empty function to clear.
  using ChallengeObserver = std::function<void(const Challenge&)>;
  void set_challenge_observer(ChallengeObserver observer) {
    challenge_observer_ = std::move(observer);
  }

  [[nodiscard]] const std::string& ip() const { return ip_; }

  /// Challenges answered so far (diagnostics).
  [[nodiscard]] std::uint64_t challenges_solved() const { return solved_; }

 private:
  struct PendingRequest {
    Callback done;
    common::TimePoint sent_at;
    // Retry state (only populated when a policy is installed): enough
    // to rebuild the Request verbatim, plus the per-attempt timer.
    std::string path;
    features::FeatureVector features;
    std::int64_t deadline_ms = 0;   ///< propagated on every attempt
    std::size_t attempts = 1;       ///< sends so far (first included)
    netsim::EventId timer = 0;      ///< pending timeout/resend event
  };

  void on_message(const std::string& from, common::BytesView payload);
  void on_challenge(const Challenge& challenge);
  void on_response(const Response& response);

  /// Arms the per-attempt timeout for \p request_id, firing on_timeout
  /// after \p in (the attempt timeout plus any modelled solve delay).
  void arm_timer(std::uint64_t request_id, common::Duration in);

  /// Timer expiry: resend after backoff, or resolve with kTimeout once
  /// the attempt budget is spent.
  void on_timeout(std::uint64_t request_id);

  /// Schedules attempt N+1 after \p wait (backoff / retry_after hint).
  void resend(std::uint64_t request_id, common::Duration wait);

  /// Fires \p done exactly once and erases the pending entry.
  void resolve(std::uint64_t request_id, const Response& response);

  netsim::EventLoop* loop_;
  netsim::Network* network_;
  std::string ip_;
  std::string server_host_;
  double hash_cost_us_;
  pow::Solver solver_;
  ChallengeObserver challenge_observer_;
  RetryPolicy retry_;
  std::uint64_t client_key_ = 0;  ///< retry_client_key(ip_), cached
  std::uint64_t next_request_id_ = 1;
  std::uint64_t solved_ = 0;
  common::TimePoint solver_busy_until_{};
  std::unordered_map<std::uint64_t, PendingRequest> pending_;
};

/// Client side at population scale: one object drives N closed-loop
/// clients through a single Network::add_host_group registration. Where
/// a WireClient costs a host-map entry, its own std::function handler,
/// a pending map, and a solver per client, the pool keeps one 32-byte
/// slot per client (request counter, in-flight id, timestamps) plus one
/// shared stateless solver — the structure that lets run_wire_load
/// model 10^5–10^6 clients.
///
/// Semantics match WireClient exactly: per-client request ids count
/// from 1, challenges are really solved but their *time* is modelled
/// (attempts × hash_cost on one sequential solver core per client), and
/// the client index is recovered from the transport-level member
/// address (base + i), so a pooled run is bit-identical to a run over N
/// individual WireClients. Restriction the closed loop satisfies by
/// construction: at most one request in flight per client.
class WireClientPool final {
 public:
  /// Invoked with the client index, final response, and request→response
  /// latency.
  using Callback = std::function<void(std::size_t client,
                                      const Response& response,
                                      common::Duration latency)>;

  /// Invoked on the loop thread for every challenge a pool client
  /// accepts (before solving) — the history/fingerprint capture hook.
  using ChallengeObserver =
      std::function<void(std::size_t client, const Challenge& challenge)>;

  /// Re-derives (path, features) for a client's resend. The pool keeps
  /// per-client slots deliberately small, so instead of storing each
  /// request's payload it asks the harness to rebuild it — which every
  /// load harness can do, because payloads are a pure function of the
  /// client index there.
  using RequestSource = std::function<std::pair<
      std::string, features::FeatureVector>(std::size_t client)>;

  /// Registers one host group covering addresses base_ip .. base_ip +
  /// count - 1 (client i lives at base_ip + i). \p loop and \p network
  /// must outlive the pool. Throws std::invalid_argument on a malformed
  /// or wrapping range (via Network::add_host_group) or count == 0.
  WireClientPool(netsim::EventLoop& loop, netsim::Network& network,
                 const std::string& base_ip, std::size_t count,
                 std::string server_host, double hash_cost_us = 38.0);

  WireClientPool(const WireClientPool&) = delete;
  WireClientPool& operator=(const WireClientPool&) = delete;

  /// Response sink shared by all clients; must be set before the first
  /// send_request. Pass an empty function to clear.
  void set_response_handler(Callback done) { done_ = std::move(done); }

  void set_challenge_observer(ChallengeObserver observer) {
    challenge_observer_ = std::move(observer);
  }

  /// Installs the retry/timeout/backoff policy for every pool client
  /// (see retry.hpp and WireClient::set_retry_policy — semantics are
  /// identical: exactly-once resolution, kTimeout after max_attempts,
  /// internal kUnavailable retries, same-id resends). \p source must be
  /// non-empty when the policy is enabled; it rebuilds (path, features)
  /// for resends. Call before the first send_request.
  void set_retry_policy(RetryPolicy policy, RequestSource source);

  /// Sends one request from client \p client. Returns the request id, or
  /// 0 if the link dropped it (the response handler never fires for a
  /// dropped request). With a retry policy installed the id is always
  /// returned and the handler always fires exactly once (dropped
  /// attempts are retried; exhaustion resolves kTimeout). Throws
  /// std::out_of_range on a bad index, std::logic_error when the client
  /// already has a request in flight or no response handler is
  /// installed.
  std::uint64_t send_request(std::size_t client, const std::string& path,
                             const features::FeatureVector& features);

  [[nodiscard]] std::size_t size() const { return slots_.size(); }

  /// Client i's transport address (base_ip + i, dotted quad).
  [[nodiscard]] std::string ip_of(std::size_t client) const;

  /// Challenges answered so far, across all clients (diagnostics).
  [[nodiscard]] std::uint64_t challenges_solved() const { return solved_; }

  /// Resident footprint: the slot table (the point: ~32 bytes/client
  /// versus a full WireClient each).
  [[nodiscard]] std::size_t memory_bytes() const {
    return sizeof(WireClientPool) + slots_.capacity() * sizeof(Slot);
  }

 private:
  /// Compact per-client state — everything WireClient keeps in maps and
  /// strings, reduced to what one closed-loop client actually needs.
  /// Retry state rides along as three plain words; request payloads are
  /// re-derived through the RequestSource instead of being stored.
  struct Slot {
    std::uint64_t next_request_id = 1;
    std::uint64_t pending_id = 0;  ///< 0 = nothing in flight
    common::TimePoint sent_at{};
    common::TimePoint solver_busy_until{};
    std::int64_t deadline_ms = 0;  ///< propagated on every attempt
    std::uint32_t attempts = 0;    ///< sends so far for pending_id
    netsim::EventId timer = 0;     ///< pending timeout/resend event
  };

  void on_message(const std::string& member, const std::string& from,
                  common::BytesView payload);
  void on_challenge(std::size_t client, const Challenge& challenge);
  void on_response(std::size_t client, const Response& response);

  /// Retry machinery — mirrors WireClient (see transport.cpp).
  void arm_timer(std::size_t client, common::Duration in);
  void on_timeout(std::size_t client, std::uint64_t request_id);
  void resend(std::size_t client, std::uint64_t request_id,
              common::Duration wait);
  void resolve(std::size_t client, const Response& response);

  netsim::EventLoop* loop_;
  netsim::Network* network_;
  std::uint32_t base_ = 0;  ///< parsed base_ip; client i at base_ + i
  std::string server_host_;
  double hash_cost_us_;
  pow::Solver solver_;  ///< stateless — shared by every client
  Callback done_;
  ChallengeObserver challenge_observer_;
  RetryPolicy retry_;
  RequestSource request_source_;
  std::uint64_t solved_ = 0;
  std::vector<Slot> slots_;
};

}  // namespace powai::framework
