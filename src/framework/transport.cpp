#include "framework/transport.hpp"

#include <chrono>
#include <stdexcept>

#include "framework/async_front_end.hpp"

namespace powai::framework {

// ---------------------------------------------------------------------------
// ServerEndpoint
// ---------------------------------------------------------------------------

ServerEndpoint::ServerEndpoint(netsim::Network& network, std::string host_name,
                               PowServer& server)
    : network_(&network), host_name_(std::move(host_name)), server_(&server) {
  network_->add_host(host_name_,
                     [this](const std::string& from, common::BytesView payload) {
                       on_message(from, payload);
                     });
}

ServerEndpoint::ServerEndpoint(netsim::Network& network, std::string host_name,
                               PowServer& server, AsyncFrontEnd& front_end)
    : ServerEndpoint(network, std::move(host_name), server) {
  front_end_ = &front_end;
}

void ServerEndpoint::on_message(const std::string& from,
                                common::BytesView payload) {
  const auto message = decode(payload);
  if (!message) {
    malformed_.fetch_add(1, std::memory_order_relaxed);
    Response nak;
    nak.status = common::ErrorCode::kMalformedMessage;
    nak.body = "could not decode message";
    (void)network_->send(host_name_, from, nak.serialize());
    return;
  }

  if (const auto* request = std::get_if<Request>(&*message)) {
    // Trust the transport-level source over the self-reported field: a
    // client lying about its IP would otherwise bind puzzles elsewhere.
    Request effective = *request;
    effective.client_ip = from;
    if (front_end_ != nullptr) {
      // Read the id before the move: argument evaluation order is
      // unsequenced, so the same call must not both read and move from
      // `effective`.
      const std::uint64_t request_id = effective.request_id;
      WireMessage wm{from, std::move(effective)};
      stamp_envelope(wm, std::get<Request>(wm.payload).deadline_ms);
      enqueue(from, request_id, std::move(wm));
      return;
    }
    auto outcome = server_->on_request(effective);
    if (const auto* challenge = std::get_if<Challenge>(&outcome)) {
      (void)network_->send(host_name_, from, challenge->serialize());
    } else {
      (void)network_->send(host_name_, from,
                           std::get<Response>(outcome).serialize());
    }
    return;
  }

  if (const auto* submission = std::get_if<Submission>(&*message)) {
    if (front_end_ != nullptr) {
      WireMessage wm{from, *submission};
      stamp_envelope(wm, submission->deadline_ms);
      enqueue(from, submission->request_id, std::move(wm));
      return;
    }
    const Response response = server_->on_submission(*submission, from);
    (void)network_->send(host_name_, from, response.serialize());
    return;
  }

  // A server never expects Challenge/Response messages; treat as noise.
  malformed_.fetch_add(1, std::memory_order_relaxed);
}

void ServerEndpoint::stamp_envelope(WireMessage& message,
                                    std::int64_t deadline_ms) const {
  // The server's clock (possibly skewed) is the one its deadline
  // comparisons read, so the arrival stamp and the effective deadline
  // come from it too.
  message.enqueued_at = server_->now();
  message.deadline_ms = server_->effective_deadline_ms(
      deadline_ms, common::to_millis(message.enqueued_at));
  message.wall_enqueued_at = std::chrono::steady_clock::now();
}

void ServerEndpoint::enqueue(const std::string& from, std::uint64_t request_id,
                             WireMessage message) {
  if (front_end_->try_push(std::move(message))) return;
  // Backpressure: the source's shard is at capacity. Answer immediately with an
  // explicit overload NAK — never buffer without bound, never drop
  // silently — and put the refusal on the server's ledger.
  server_->note_overload();
  Response overloaded;
  overloaded.request_id = request_id;
  overloaded.status = common::ErrorCode::kUnavailable;
  overloaded.body = "server overloaded";
  overloaded.retry_after_ms = server_->retry_after_hint_ms();
  (void)network_->send(host_name_, from, overloaded.serialize());
}

// ---------------------------------------------------------------------------
// WireClient
// ---------------------------------------------------------------------------

WireClient::WireClient(netsim::EventLoop& loop, netsim::Network& network,
                       std::string ip, std::string server_host,
                       double hash_cost_us)
    : loop_(&loop),
      network_(&network),
      ip_(std::move(ip)),
      server_host_(std::move(server_host)),
      hash_cost_us_(hash_cost_us) {
  network_->add_host(ip_,
                     [this](const std::string& from, common::BytesView payload) {
                       on_message(from, payload);
                     });
}

void WireClient::set_retry_policy(RetryPolicy policy) {
  if (policy.enabled && policy.max_attempts == 0) {
    throw std::invalid_argument("WireClient: retry max_attempts must be >= 1");
  }
  retry_ = policy;
  client_key_ = retry_client_key(ip_);
}

std::uint64_t WireClient::send_request(const std::string& path,
                                       const features::FeatureVector& features,
                                       Callback done) {
  Request request;
  request.client_ip = ip_;
  request.path = path;
  request.features = features;
  request.request_id = next_request_id_++;
  if (retry_.enabled && retry_.request_deadline > common::Duration::zero()) {
    request.deadline_ms =
        common::to_millis(loop_->now() + retry_.request_deadline);
  }
  const bool sent = network_->send(ip_, server_host_, request.serialize());
  if (!sent && !retry_.enabled) {
    return 0;  // dropped by the link; single-shot mode never resolves
  }
  PendingRequest entry;
  entry.done = std::move(done);
  entry.sent_at = loop_->now();
  auto [it, inserted] =
      pending_.emplace(request.request_id, std::move(entry));
  (void)inserted;
  if (retry_.enabled) {
    // Even a dropped first attempt is registered: the timer turns the
    // silence into a resend (or eventually kTimeout), so `done` always
    // fires — the liveness hole single-shot callers had to paper over.
    it->second.path = path;
    it->second.features = features;
    it->second.deadline_ms = request.deadline_ms;
    arm_timer(request.request_id, retry_.timeout);
  }
  return request.request_id;
}

void WireClient::arm_timer(std::uint64_t request_id, common::Duration in) {
  auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  it->second.timer = loop_->schedule_in(
      in, [this, request_id] { on_timeout(request_id); });
}

void WireClient::on_timeout(std::uint64_t request_id) {
  auto it = pending_.find(request_id);
  if (it == pending_.end()) return;  // resolved in the meantime
  it->second.timer = 0;
  if (it->second.attempts >= retry_.max_attempts) {
    Response timed_out;
    timed_out.request_id = request_id;
    timed_out.status = common::ErrorCode::kTimeout;
    timed_out.body = "client retry budget exhausted";
    resolve(request_id, timed_out);
    return;
  }
  resend(request_id,
         retry_backoff(retry_, client_key_, request_id, it->second.attempts));
}

void WireClient::resend(std::uint64_t request_id, common::Duration wait) {
  auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  ++it->second.attempts;
  it->second.timer = loop_->schedule_in(wait, [this, request_id] {
    auto entry = pending_.find(request_id);
    if (entry == pending_.end()) return;
    Request request;
    request.client_ip = ip_;
    request.path = entry->second.path;
    request.features = entry->second.features;
    request.request_id = request_id;  // same id: idempotent on the server
    request.deadline_ms = entry->second.deadline_ms;
    (void)network_->send(ip_, server_host_, request.serialize());
    arm_timer(request_id, retry_.timeout);
  });
}

void WireClient::resolve(std::uint64_t request_id, const Response& response) {
  auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  if (it->second.timer != 0) (void)loop_->cancel(it->second.timer);
  PendingRequest pending = std::move(it->second);
  pending_.erase(it);
  pending.done(response, loop_->now() - pending.sent_at);
}

void WireClient::on_message(const std::string& /*from*/,
                            common::BytesView payload) {
  const auto message = decode(payload);
  if (!message) return;  // noise on the wire
  if (const auto* challenge = std::get_if<Challenge>(&*message)) {
    on_challenge(*challenge);
  } else if (const auto* response = std::get_if<Response>(&*message)) {
    on_response(*response);
  }
}

void WireClient::on_challenge(const Challenge& challenge) {
  const auto it = pending_.find(challenge.request_id);
  if (it == pending_.end()) return;  // stale/unknown
  if (challenge_observer_) challenge_observer_(challenge);

  // Really solve (correct nonce), but account for the time on the
  // modelled CPU: one solver core, sequential backlog.
  const pow::SolveResult solved = solver_.solve(challenge.puzzle);
  ++solved_;
  const auto solve_cost = std::chrono::duration_cast<common::Duration>(
      std::chrono::duration<double, std::micro>(
          static_cast<double>(solved.attempts) * hash_cost_us_));
  const common::TimePoint start =
      std::max(loop_->now(), solver_busy_until_);
  solver_busy_until_ = start + solve_cost;

  Submission submission;
  submission.request_id = challenge.request_id;
  submission.puzzle = challenge.puzzle;
  submission.solution = solved.solution;
  submission.deadline_ms = it->second.deadline_ms;  // deadline propagates
  const common::Duration delay = solver_busy_until_ - loop_->now();
  if (retry_.enabled) {
    // The attempt clock restarts from the submission's send instant:
    // solving is local progress, so only submission → response silence
    // should count against the timeout.
    if (it->second.timer != 0) (void)loop_->cancel(it->second.timer);
    it->second.timer = 0;
    arm_timer(challenge.request_id, delay + retry_.timeout);
  }
  loop_->schedule_in(delay, [this, submission = std::move(submission)] {
    (void)network_->send(ip_, server_host_, submission.serialize());
  });
}

void WireClient::on_response(const Response& response) {
  const auto it = pending_.find(response.request_id);
  if (it == pending_.end()) return;  // late duplicate — already resolved
  if (retry_.enabled && response.status == common::ErrorCode::kUnavailable &&
      it->second.attempts < retry_.max_attempts) {
    // Server shed the request (overload NAK, deadline, degradation):
    // honour its retry_after hint, never wait less than our own backoff.
    if (it->second.timer != 0) (void)loop_->cancel(it->second.timer);
    it->second.timer = 0;
    const auto backoff = retry_backoff(retry_, client_key_,
                                       response.request_id,
                                       it->second.attempts);
    const auto hinted = std::chrono::duration_cast<common::Duration>(
        std::chrono::milliseconds(response.retry_after_ms));
    resend(response.request_id, std::max(backoff, hinted));
    return;
  }
  resolve(response.request_id, response);
}

// ---------------------------------------------------------------------------
// WireClientPool
// ---------------------------------------------------------------------------

WireClientPool::WireClientPool(netsim::EventLoop& loop,
                               netsim::Network& network,
                               const std::string& base_ip, std::size_t count,
                               std::string server_host, double hash_cost_us)
    : loop_(&loop),
      network_(&network),
      server_host_(std::move(server_host)),
      hash_cost_us_(hash_cost_us) {
  // add_host_group re-validates base/count/overlap; parse here only to
  // cache the numeric base for index recovery.
  const auto base = features::IpAddress::parse(base_ip);
  if (!base) {
    throw std::invalid_argument("WireClientPool: malformed base '" + base_ip +
                                "'");
  }
  base_ = base->value();
  network_->add_host_group(
      base_ip, count,
      [this](const std::string& member, const std::string& from,
             common::BytesView payload) { on_message(member, from, payload); });
  slots_.resize(count);
}

std::string WireClientPool::ip_of(std::size_t client) const {
  if (client >= slots_.size()) {
    throw std::out_of_range("WireClientPool: client index out of range");
  }
  return features::IpAddress(base_ + static_cast<std::uint32_t>(client))
      .to_string();
}

void WireClientPool::set_retry_policy(RetryPolicy policy,
                                      RequestSource source) {
  if (policy.enabled && !source) {
    throw std::invalid_argument(
        "WireClientPool: retry policy needs a RequestSource for resends");
  }
  if (policy.enabled && policy.max_attempts == 0) {
    throw std::invalid_argument(
        "WireClientPool: retry max_attempts must be >= 1");
  }
  retry_ = policy;
  request_source_ = std::move(source);
}

std::uint64_t WireClientPool::send_request(
    std::size_t client, const std::string& path,
    const features::FeatureVector& features) {
  Slot& slot = slots_.at(client);
  if (slot.pending_id != 0) {
    throw std::logic_error(
        "WireClientPool: client already has a request in flight");
  }
  if (!done_) {
    throw std::logic_error("WireClientPool: no response handler installed");
  }
  const std::string ip = ip_of(client);
  Request request;
  request.client_ip = ip;
  request.path = path;
  request.features = features;
  request.request_id = slot.next_request_id++;
  if (retry_.enabled && retry_.request_deadline > common::Duration::zero()) {
    request.deadline_ms =
        common::to_millis(loop_->now() + retry_.request_deadline);
  }
  const bool sent = network_->send(ip, server_host_, request.serialize());
  if (!sent && !retry_.enabled) {
    return 0;  // dropped by the link; single-shot mode never resolves
  }
  slot.pending_id = request.request_id;
  slot.sent_at = loop_->now();
  if (retry_.enabled) {
    // Same liveness closure as WireClient: a dropped attempt is still
    // in flight from the pool's point of view, and the timer resolves
    // it (resend or kTimeout) so the handler fires exactly once.
    slot.deadline_ms = request.deadline_ms;
    slot.attempts = 1;
    arm_timer(client, retry_.timeout);
  }
  return request.request_id;
}

void WireClientPool::arm_timer(std::size_t client, common::Duration in) {
  Slot& slot = slots_[client];
  const std::uint64_t request_id = slot.pending_id;
  slot.timer = loop_->schedule_in(
      in, [this, client, request_id] { on_timeout(client, request_id); });
}

void WireClientPool::on_timeout(std::size_t client,
                                std::uint64_t request_id) {
  Slot& slot = slots_[client];
  if (slot.pending_id != request_id) return;  // resolved in the meantime
  slot.timer = 0;
  if (slot.attempts >= retry_.max_attempts) {
    Response timed_out;
    timed_out.request_id = request_id;
    timed_out.status = common::ErrorCode::kTimeout;
    timed_out.body = "client retry budget exhausted";
    resolve(client, timed_out);
    return;
  }
  resend(client, request_id,
         retry_backoff(retry_, retry_client_key(ip_of(client)), request_id,
                       slot.attempts));
}

void WireClientPool::resend(std::size_t client, std::uint64_t request_id,
                            common::Duration wait) {
  Slot& slot = slots_[client];
  ++slot.attempts;
  slot.timer = loop_->schedule_in(wait, [this, client, request_id] {
    Slot& entry = slots_[client];
    if (entry.pending_id != request_id) return;
    // Rebuild the payload through the harness instead of storing it —
    // keeps the slot small at million-client scale.
    auto [path, features] = request_source_(client);
    Request request;
    request.client_ip = ip_of(client);
    request.path = std::move(path);
    request.features = features;
    request.request_id = request_id;  // same id: idempotent on the server
    request.deadline_ms = entry.deadline_ms;
    (void)network_->send(ip_of(client), server_host_, request.serialize());
    arm_timer(client, retry_.timeout);
  });
}

void WireClientPool::resolve(std::size_t client, const Response& response) {
  Slot& slot = slots_[client];
  if (slot.pending_id != response.request_id) return;
  if (slot.timer != 0) (void)loop_->cancel(slot.timer);
  slot.timer = 0;
  slot.pending_id = 0;
  slot.attempts = 0;
  done_(client, response, loop_->now() - slot.sent_at);
}

void WireClientPool::on_message(const std::string& member,
                                const std::string& from,
                                common::BytesView payload) {
  (void)from;
  // Recover the client index from the member address the group handler
  // was invoked for — O(1), no per-client registration.
  const auto ip = features::IpAddress::parse(member);
  if (!ip || ip->value() < base_) return;
  const std::uint64_t offset = ip->value() - base_;
  if (offset >= slots_.size()) return;
  const auto client = static_cast<std::size_t>(offset);

  const auto message = decode(payload);
  if (!message) return;  // noise on the wire
  if (const auto* challenge = std::get_if<Challenge>(&*message)) {
    on_challenge(client, *challenge);
  } else if (const auto* response = std::get_if<Response>(&*message)) {
    on_response(client, *response);
  }
}

void WireClientPool::on_challenge(std::size_t client,
                                  const Challenge& challenge) {
  Slot& slot = slots_[client];
  if (slot.pending_id != challenge.request_id) return;  // stale/unknown
  if (challenge_observer_) challenge_observer_(client, challenge);

  // Identical solve-cost model to WireClient: really solve, charge
  // attempts × hash_cost to this client's one sequential solver core.
  const pow::SolveResult solved = solver_.solve(challenge.puzzle);
  ++solved_;
  const auto solve_cost = std::chrono::duration_cast<common::Duration>(
      std::chrono::duration<double, std::micro>(
          static_cast<double>(solved.attempts) * hash_cost_us_));
  const common::TimePoint start =
      std::max(loop_->now(), slot.solver_busy_until);
  slot.solver_busy_until = start + solve_cost;

  Submission submission;
  submission.request_id = challenge.request_id;
  submission.puzzle = challenge.puzzle;
  submission.solution = solved.solution;
  submission.deadline_ms = slot.deadline_ms;  // deadline propagates
  const common::Duration delay = slot.solver_busy_until - loop_->now();
  if (retry_.enabled) {
    // Restart the attempt clock from the submission's send instant
    // (solving is local progress — see WireClient::on_challenge).
    if (slot.timer != 0) (void)loop_->cancel(slot.timer);
    slot.timer = 0;
    arm_timer(client, delay + retry_.timeout);
  }
  loop_->schedule_in(
      delay, [this, client, submission = std::move(submission)] {
        (void)network_->send(ip_of(client), server_host_,
                             submission.serialize());
      });
}

void WireClientPool::on_response(std::size_t client,
                                 const Response& response) {
  Slot& slot = slots_[client];
  if (slot.pending_id != response.request_id) return;  // stale/unknown
  if (retry_.enabled && response.status == common::ErrorCode::kUnavailable &&
      slot.attempts < retry_.max_attempts) {
    if (slot.timer != 0) (void)loop_->cancel(slot.timer);
    slot.timer = 0;
    const auto backoff =
        retry_backoff(retry_, retry_client_key(ip_of(client)),
                      response.request_id, slot.attempts);
    const auto hinted = std::chrono::duration_cast<common::Duration>(
        std::chrono::milliseconds(response.retry_after_ms));
    resend(client, response.request_id, std::max(backoff, hinted));
    return;
  }
  resolve(client, response);
}

}  // namespace powai::framework
