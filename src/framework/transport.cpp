#include "framework/transport.hpp"

#include <chrono>

#include "framework/async_front_end.hpp"

namespace powai::framework {

// ---------------------------------------------------------------------------
// ServerEndpoint
// ---------------------------------------------------------------------------

ServerEndpoint::ServerEndpoint(netsim::Network& network, std::string host_name,
                               PowServer& server)
    : network_(&network), host_name_(std::move(host_name)), server_(&server) {
  network_->add_host(host_name_,
                     [this](const std::string& from, common::BytesView payload) {
                       on_message(from, payload);
                     });
}

ServerEndpoint::ServerEndpoint(netsim::Network& network, std::string host_name,
                               PowServer& server, AsyncFrontEnd& front_end)
    : ServerEndpoint(network, std::move(host_name), server) {
  front_end_ = &front_end;
}

void ServerEndpoint::on_message(const std::string& from,
                                common::BytesView payload) {
  const auto message = decode(payload);
  if (!message) {
    malformed_.fetch_add(1, std::memory_order_relaxed);
    Response nak;
    nak.status = common::ErrorCode::kMalformedMessage;
    nak.body = "could not decode message";
    (void)network_->send(host_name_, from, nak.serialize());
    return;
  }

  if (const auto* request = std::get_if<Request>(&*message)) {
    // Trust the transport-level source over the self-reported field: a
    // client lying about its IP would otherwise bind puzzles elsewhere.
    Request effective = *request;
    effective.client_ip = from;
    if (front_end_ != nullptr) {
      // Read the id before the move: argument evaluation order is
      // unsequenced, so the same call must not both read and move from
      // `effective`.
      const std::uint64_t request_id = effective.request_id;
      enqueue(from, request_id, WireMessage{from, std::move(effective)});
      return;
    }
    auto outcome = server_->on_request(effective);
    if (const auto* challenge = std::get_if<Challenge>(&outcome)) {
      (void)network_->send(host_name_, from, challenge->serialize());
    } else {
      (void)network_->send(host_name_, from,
                           std::get<Response>(outcome).serialize());
    }
    return;
  }

  if (const auto* submission = std::get_if<Submission>(&*message)) {
    if (front_end_ != nullptr) {
      enqueue(from, submission->request_id, WireMessage{from, *submission});
      return;
    }
    const Response response = server_->on_submission(*submission, from);
    (void)network_->send(host_name_, from, response.serialize());
    return;
  }

  // A server never expects Challenge/Response messages; treat as noise.
  malformed_.fetch_add(1, std::memory_order_relaxed);
}

void ServerEndpoint::enqueue(const std::string& from, std::uint64_t request_id,
                             WireMessage message) {
  if (front_end_->try_push(std::move(message))) return;
  // Backpressure: the source's shard is at capacity. Answer immediately with an
  // explicit overload NAK — never buffer without bound, never drop
  // silently — and put the refusal on the server's ledger.
  server_->note_overload();
  Response overloaded;
  overloaded.request_id = request_id;
  overloaded.status = common::ErrorCode::kUnavailable;
  overloaded.body = "server overloaded";
  (void)network_->send(host_name_, from, overloaded.serialize());
}

// ---------------------------------------------------------------------------
// WireClient
// ---------------------------------------------------------------------------

WireClient::WireClient(netsim::EventLoop& loop, netsim::Network& network,
                       std::string ip, std::string server_host,
                       double hash_cost_us)
    : loop_(&loop),
      network_(&network),
      ip_(std::move(ip)),
      server_host_(std::move(server_host)),
      hash_cost_us_(hash_cost_us) {
  network_->add_host(ip_,
                     [this](const std::string& from, common::BytesView payload) {
                       on_message(from, payload);
                     });
}

std::uint64_t WireClient::send_request(const std::string& path,
                                       const features::FeatureVector& features,
                                       Callback done) {
  Request request;
  request.client_ip = ip_;
  request.path = path;
  request.features = features;
  request.request_id = next_request_id_++;
  if (!network_->send(ip_, server_host_, request.serialize())) {
    return 0;  // dropped by the link
  }
  pending_.emplace(request.request_id,
                   PendingRequest{std::move(done), loop_->now()});
  return request.request_id;
}

void WireClient::on_message(const std::string& /*from*/,
                            common::BytesView payload) {
  const auto message = decode(payload);
  if (!message) return;  // noise on the wire
  if (const auto* challenge = std::get_if<Challenge>(&*message)) {
    on_challenge(*challenge);
  } else if (const auto* response = std::get_if<Response>(&*message)) {
    on_response(*response);
  }
}

void WireClient::on_challenge(const Challenge& challenge) {
  if (!pending_.contains(challenge.request_id)) return;  // stale/unknown
  if (challenge_observer_) challenge_observer_(challenge);

  // Really solve (correct nonce), but account for the time on the
  // modelled CPU: one solver core, sequential backlog.
  const pow::SolveResult solved = solver_.solve(challenge.puzzle);
  ++solved_;
  const auto solve_cost = std::chrono::duration_cast<common::Duration>(
      std::chrono::duration<double, std::micro>(
          static_cast<double>(solved.attempts) * hash_cost_us_));
  const common::TimePoint start =
      std::max(loop_->now(), solver_busy_until_);
  solver_busy_until_ = start + solve_cost;

  Submission submission;
  submission.request_id = challenge.request_id;
  submission.puzzle = challenge.puzzle;
  submission.solution = solved.solution;
  const common::Duration delay = solver_busy_until_ - loop_->now();
  loop_->schedule_in(delay, [this, submission = std::move(submission)] {
    (void)network_->send(ip_, server_host_, submission.serialize());
  });
}

void WireClient::on_response(const Response& response) {
  const auto it = pending_.find(response.request_id);
  if (it == pending_.end()) return;
  PendingRequest pending = std::move(it->second);
  pending_.erase(it);
  pending.done(response, loop_->now() - pending.sent_at);
}

}  // namespace powai::framework
