#include "framework/transport.hpp"

#include <chrono>
#include <stdexcept>

#include "framework/async_front_end.hpp"

namespace powai::framework {

// ---------------------------------------------------------------------------
// ServerEndpoint
// ---------------------------------------------------------------------------

ServerEndpoint::ServerEndpoint(netsim::Network& network, std::string host_name,
                               PowServer& server)
    : network_(&network), host_name_(std::move(host_name)), server_(&server) {
  network_->add_host(host_name_,
                     [this](const std::string& from, common::BytesView payload) {
                       on_message(from, payload);
                     });
}

ServerEndpoint::ServerEndpoint(netsim::Network& network, std::string host_name,
                               PowServer& server, AsyncFrontEnd& front_end)
    : ServerEndpoint(network, std::move(host_name), server) {
  front_end_ = &front_end;
}

void ServerEndpoint::on_message(const std::string& from,
                                common::BytesView payload) {
  const auto message = decode(payload);
  if (!message) {
    malformed_.fetch_add(1, std::memory_order_relaxed);
    Response nak;
    nak.status = common::ErrorCode::kMalformedMessage;
    nak.body = "could not decode message";
    (void)network_->send(host_name_, from, nak.serialize());
    return;
  }

  if (const auto* request = std::get_if<Request>(&*message)) {
    // Trust the transport-level source over the self-reported field: a
    // client lying about its IP would otherwise bind puzzles elsewhere.
    Request effective = *request;
    effective.client_ip = from;
    if (front_end_ != nullptr) {
      // Read the id before the move: argument evaluation order is
      // unsequenced, so the same call must not both read and move from
      // `effective`.
      const std::uint64_t request_id = effective.request_id;
      enqueue(from, request_id, WireMessage{from, std::move(effective)});
      return;
    }
    auto outcome = server_->on_request(effective);
    if (const auto* challenge = std::get_if<Challenge>(&outcome)) {
      (void)network_->send(host_name_, from, challenge->serialize());
    } else {
      (void)network_->send(host_name_, from,
                           std::get<Response>(outcome).serialize());
    }
    return;
  }

  if (const auto* submission = std::get_if<Submission>(&*message)) {
    if (front_end_ != nullptr) {
      enqueue(from, submission->request_id, WireMessage{from, *submission});
      return;
    }
    const Response response = server_->on_submission(*submission, from);
    (void)network_->send(host_name_, from, response.serialize());
    return;
  }

  // A server never expects Challenge/Response messages; treat as noise.
  malformed_.fetch_add(1, std::memory_order_relaxed);
}

void ServerEndpoint::enqueue(const std::string& from, std::uint64_t request_id,
                             WireMessage message) {
  if (front_end_->try_push(std::move(message))) return;
  // Backpressure: the source's shard is at capacity. Answer immediately with an
  // explicit overload NAK — never buffer without bound, never drop
  // silently — and put the refusal on the server's ledger.
  server_->note_overload();
  Response overloaded;
  overloaded.request_id = request_id;
  overloaded.status = common::ErrorCode::kUnavailable;
  overloaded.body = "server overloaded";
  (void)network_->send(host_name_, from, overloaded.serialize());
}

// ---------------------------------------------------------------------------
// WireClient
// ---------------------------------------------------------------------------

WireClient::WireClient(netsim::EventLoop& loop, netsim::Network& network,
                       std::string ip, std::string server_host,
                       double hash_cost_us)
    : loop_(&loop),
      network_(&network),
      ip_(std::move(ip)),
      server_host_(std::move(server_host)),
      hash_cost_us_(hash_cost_us) {
  network_->add_host(ip_,
                     [this](const std::string& from, common::BytesView payload) {
                       on_message(from, payload);
                     });
}

std::uint64_t WireClient::send_request(const std::string& path,
                                       const features::FeatureVector& features,
                                       Callback done) {
  Request request;
  request.client_ip = ip_;
  request.path = path;
  request.features = features;
  request.request_id = next_request_id_++;
  if (!network_->send(ip_, server_host_, request.serialize())) {
    return 0;  // dropped by the link
  }
  pending_.emplace(request.request_id,
                   PendingRequest{std::move(done), loop_->now()});
  return request.request_id;
}

void WireClient::on_message(const std::string& /*from*/,
                            common::BytesView payload) {
  const auto message = decode(payload);
  if (!message) return;  // noise on the wire
  if (const auto* challenge = std::get_if<Challenge>(&*message)) {
    on_challenge(*challenge);
  } else if (const auto* response = std::get_if<Response>(&*message)) {
    on_response(*response);
  }
}

void WireClient::on_challenge(const Challenge& challenge) {
  if (!pending_.contains(challenge.request_id)) return;  // stale/unknown
  if (challenge_observer_) challenge_observer_(challenge);

  // Really solve (correct nonce), but account for the time on the
  // modelled CPU: one solver core, sequential backlog.
  const pow::SolveResult solved = solver_.solve(challenge.puzzle);
  ++solved_;
  const auto solve_cost = std::chrono::duration_cast<common::Duration>(
      std::chrono::duration<double, std::micro>(
          static_cast<double>(solved.attempts) * hash_cost_us_));
  const common::TimePoint start =
      std::max(loop_->now(), solver_busy_until_);
  solver_busy_until_ = start + solve_cost;

  Submission submission;
  submission.request_id = challenge.request_id;
  submission.puzzle = challenge.puzzle;
  submission.solution = solved.solution;
  const common::Duration delay = solver_busy_until_ - loop_->now();
  loop_->schedule_in(delay, [this, submission = std::move(submission)] {
    (void)network_->send(ip_, server_host_, submission.serialize());
  });
}

void WireClient::on_response(const Response& response) {
  const auto it = pending_.find(response.request_id);
  if (it == pending_.end()) return;
  PendingRequest pending = std::move(it->second);
  pending_.erase(it);
  pending.done(response, loop_->now() - pending.sent_at);
}

// ---------------------------------------------------------------------------
// WireClientPool
// ---------------------------------------------------------------------------

WireClientPool::WireClientPool(netsim::EventLoop& loop,
                               netsim::Network& network,
                               const std::string& base_ip, std::size_t count,
                               std::string server_host, double hash_cost_us)
    : loop_(&loop),
      network_(&network),
      server_host_(std::move(server_host)),
      hash_cost_us_(hash_cost_us) {
  // add_host_group re-validates base/count/overlap; parse here only to
  // cache the numeric base for index recovery.
  const auto base = features::IpAddress::parse(base_ip);
  if (!base) {
    throw std::invalid_argument("WireClientPool: malformed base '" + base_ip +
                                "'");
  }
  base_ = base->value();
  network_->add_host_group(
      base_ip, count,
      [this](const std::string& member, const std::string& from,
             common::BytesView payload) { on_message(member, from, payload); });
  slots_.resize(count);
}

std::string WireClientPool::ip_of(std::size_t client) const {
  if (client >= slots_.size()) {
    throw std::out_of_range("WireClientPool: client index out of range");
  }
  return features::IpAddress(base_ + static_cast<std::uint32_t>(client))
      .to_string();
}

std::uint64_t WireClientPool::send_request(
    std::size_t client, const std::string& path,
    const features::FeatureVector& features) {
  Slot& slot = slots_.at(client);
  if (slot.pending_id != 0) {
    throw std::logic_error(
        "WireClientPool: client already has a request in flight");
  }
  if (!done_) {
    throw std::logic_error("WireClientPool: no response handler installed");
  }
  const std::string ip = ip_of(client);
  Request request;
  request.client_ip = ip;
  request.path = path;
  request.features = features;
  request.request_id = slot.next_request_id++;
  if (!network_->send(ip, server_host_, request.serialize())) {
    return 0;  // dropped by the link
  }
  slot.pending_id = request.request_id;
  slot.sent_at = loop_->now();
  return request.request_id;
}

void WireClientPool::on_message(const std::string& member,
                                const std::string& from,
                                common::BytesView payload) {
  (void)from;
  // Recover the client index from the member address the group handler
  // was invoked for — O(1), no per-client registration.
  const auto ip = features::IpAddress::parse(member);
  if (!ip || ip->value() < base_) return;
  const std::uint64_t offset = ip->value() - base_;
  if (offset >= slots_.size()) return;
  const auto client = static_cast<std::size_t>(offset);

  const auto message = decode(payload);
  if (!message) return;  // noise on the wire
  if (const auto* challenge = std::get_if<Challenge>(&*message)) {
    on_challenge(client, *challenge);
  } else if (const auto* response = std::get_if<Response>(&*message)) {
    on_response(client, *response);
  }
}

void WireClientPool::on_challenge(std::size_t client,
                                  const Challenge& challenge) {
  Slot& slot = slots_[client];
  if (slot.pending_id != challenge.request_id) return;  // stale/unknown
  if (challenge_observer_) challenge_observer_(client, challenge);

  // Identical solve-cost model to WireClient: really solve, charge
  // attempts × hash_cost to this client's one sequential solver core.
  const pow::SolveResult solved = solver_.solve(challenge.puzzle);
  ++solved_;
  const auto solve_cost = std::chrono::duration_cast<common::Duration>(
      std::chrono::duration<double, std::micro>(
          static_cast<double>(solved.attempts) * hash_cost_us_));
  const common::TimePoint start =
      std::max(loop_->now(), slot.solver_busy_until);
  slot.solver_busy_until = start + solve_cost;

  Submission submission;
  submission.request_id = challenge.request_id;
  submission.puzzle = challenge.puzzle;
  submission.solution = solved.solution;
  const common::Duration delay = slot.solver_busy_until - loop_->now();
  loop_->schedule_in(
      delay, [this, client, submission = std::move(submission)] {
        (void)network_->send(ip_of(client), server_host_,
                             submission.serialize());
      });
}

void WireClientPool::on_response(std::size_t client,
                                 const Response& response) {
  Slot& slot = slots_[client];
  if (slot.pending_id != response.request_id) return;  // stale/unknown
  slot.pending_id = 0;
  done_(client, response, loop_->now() - slot.sent_at);
}

}  // namespace powai::framework
