#include "framework/server.hpp"

#include <stdexcept>

namespace powai::framework {

PowServer::PowServer(const common::Clock& clock,
                     const reputation::IReputationModel& model,
                     const policy::IPolicy& pol, ServerConfig config)
    : model_(&model),
      policy_(&pol),
      config_(std::move(config)),
      policy_rng_(config_.policy_seed),
      generator_(clock, config_.master_secret),
      verifier_(clock, config_.master_secret, config_.verifier),
      cache_(clock, config_.cache, config_.cache_shards),
      rate_limiter_(clock, config_.rate_limiter) {
  if (!model.fitted()) {
    throw std::invalid_argument("PowServer: reputation model is not fitted");
  }
}

std::variant<Challenge, Response> PowServer::on_request(const Request& request) {
  ++stats_.requests;

  const auto ip = features::IpAddress::parse(request.client_ip);
  if (!ip) {
    ++stats_.rejected_malformed;
    return Response{request.request_id, common::ErrorCode::kInvalidArgument,
                    "unparsable client ip"};
  }

  if (config_.rate_limiter_enabled && !rate_limiter_.allow(*ip)) {
    ++stats_.rejected_rate_limited;
    return Response{request.request_id, common::ErrorCode::kRateLimited,
                    "challenge rate exceeded"};
  }

  if (!config_.pow_enabled) {
    // Baseline mode: no puzzle, immediate service.
    ++stats_.served;
    ++stats_.served_without_pow;
    return Response{request.request_id, common::ErrorCode::kOk,
                    config_.resource_body};
  }

  // (2) AI model → reputation score (optionally via the cache).
  double score;
  trace_.from_cache = false;
  if (config_.reputation_cache_enabled) {
    if (const auto cached = cache_.lookup(*ip)) {
      score = *cached;
      trace_.from_cache = true;
    } else {
      score = model_->score(request.features);
      cache_.update(*ip, score);
    }
  } else {
    score = model_->score(request.features);
  }

  // (3) policy → difficulty.
  const policy::Difficulty d = policy_->difficulty(score, policy_rng_);
  trace_.score = score;
  trace_.difficulty = d;

  // (4) issue the puzzle.
  ++stats_.challenges_issued;
  stats_.difficulty_sum += d;
  return Challenge{request.request_id,
                   generator_.issue(request.client_ip, d)};
}

Response PowServer::on_submission(const Submission& submission,
                                  const std::string& observed_ip) {
  return finalize_submission(
      submission.request_id,
      verifier_.verify(submission.puzzle, submission.solution, observed_ip));
}

std::vector<Response> PowServer::on_submission_batch(
    std::span<const Submission> submissions,
    std::span<const std::string> observed_ips) {
  if (!observed_ips.empty() && observed_ips.size() != submissions.size()) {
    throw std::invalid_argument(
        "PowServer::on_submission_batch: observed_ips size mismatch");
  }
  if (!batch_verifier_) {
    batch_verifier_ = std::make_unique<pow::BatchVerifier>(
        verifier_, config_.verify_threads);
  }

  std::vector<pow::VerificationJob> jobs;
  jobs.reserve(submissions.size());
  for (std::size_t i = 0; i < submissions.size(); ++i) {
    jobs.push_back({&submissions[i].puzzle, &submissions[i].solution,
                    observed_ips.empty() ? nullptr : &observed_ips[i]});
  }

  // Verification fans out across the pool; the stats fold stays on the
  // calling thread so ServerStats needs no atomics.
  const std::vector<common::Status> statuses =
      batch_verifier_->verify_batch(jobs);

  std::vector<Response> responses;
  responses.reserve(submissions.size());
  for (std::size_t i = 0; i < submissions.size(); ++i) {
    responses.push_back(
        finalize_submission(submissions[i].request_id, statuses[i]));
  }
  return responses;
}

Response PowServer::finalize_submission(std::uint64_t request_id,
                                        const common::Status& status) {
  if (status.ok()) {
    // (6)-(7): solved correctly — serve the resource.
    ++stats_.served;
    return Response{request_id, common::ErrorCode::kOk,
                    config_.resource_body};
  }
  switch (status.error().code) {
    case common::ErrorCode::kExpired: ++stats_.rejected_expired; break;
    case common::ErrorCode::kReplay: ++stats_.rejected_replay; break;
    case common::ErrorCode::kBadSolution: ++stats_.rejected_bad_solution; break;
    default: ++stats_.rejected_binding; break;
  }
  return Response{request_id, status.error().code, status.error().message};
}

}  // namespace powai::framework
