#include "framework/server.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <stdexcept>

namespace powai::framework {

namespace {
constexpr auto kRelaxed = std::memory_order_relaxed;
}

PowServer::PowServer(const common::Clock& clock,
                     const reputation::IReputationModel& model,
                     const policy::IPolicy& pol, ServerConfig config)
    : clock_(&clock),
      model_(&model),
      policy_(&pol),
      config_(std::move(config)),
      generator_(clock, config_.master_secret),
      verifier_(clock, config_.master_secret, config_.verifier),
      cache_(clock, config_.cache, config_.cache_shards),
      rate_limiter_(clock, config_.rate_limiter),
      ladder_(config_.degrade) {
  if (!model.fitted()) {
    throw std::invalid_argument("PowServer: reputation model is not fitted");
  }
}

ServerStats PowServer::AtomicStats::snapshot() const {
  ServerStats s;
  s.requests = requests.load(kRelaxed);
  s.challenges_issued = challenges_issued.load(kRelaxed);
  s.served = served.load(kRelaxed);
  s.served_without_pow = served_without_pow.load(kRelaxed);
  s.rejected_rate_limited = rejected_rate_limited.load(kRelaxed);
  s.rejected_malformed = rejected_malformed.load(kRelaxed);
  s.rejected_bad_solution = rejected_bad_solution.load(kRelaxed);
  s.rejected_expired = rejected_expired.load(kRelaxed);
  s.rejected_replay = rejected_replay.load(kRelaxed);
  s.rejected_binding = rejected_binding.load(kRelaxed);
  s.rejected_overload = rejected_overload.load(kRelaxed);
  s.shed_deadline_requests = shed_deadline_requests.load(kRelaxed);
  s.shed_deadline_submissions = shed_deadline_submissions.load(kRelaxed);
  s.shed_queue_requests = shed_queue_requests.load(kRelaxed);
  s.shed_queue_submissions = shed_queue_submissions.load(kRelaxed);
  s.shed_degraded_requests = shed_degraded_requests.load(kRelaxed);
  s.shed_degraded_submissions = shed_degraded_submissions.load(kRelaxed);
  s.difficulty_sum = difficulty_sum.load(kRelaxed);
  return s;
}

ServerStats ServerStats::operator-(const ServerStats& rhs) const {
  ServerStats d;
  d.requests = requests - rhs.requests;
  d.challenges_issued = challenges_issued - rhs.challenges_issued;
  d.served = served - rhs.served;
  d.served_without_pow = served_without_pow - rhs.served_without_pow;
  d.rejected_rate_limited = rejected_rate_limited - rhs.rejected_rate_limited;
  d.rejected_malformed = rejected_malformed - rhs.rejected_malformed;
  d.rejected_bad_solution = rejected_bad_solution - rhs.rejected_bad_solution;
  d.rejected_expired = rejected_expired - rhs.rejected_expired;
  d.rejected_replay = rejected_replay - rhs.rejected_replay;
  d.rejected_binding = rejected_binding - rhs.rejected_binding;
  d.rejected_overload = rejected_overload - rhs.rejected_overload;
  d.shed_deadline_requests = shed_deadline_requests - rhs.shed_deadline_requests;
  d.shed_deadline_submissions =
      shed_deadline_submissions - rhs.shed_deadline_submissions;
  d.shed_queue_requests = shed_queue_requests - rhs.shed_queue_requests;
  d.shed_queue_submissions =
      shed_queue_submissions - rhs.shed_queue_submissions;
  d.shed_degraded_requests =
      shed_degraded_requests - rhs.shed_degraded_requests;
  d.shed_degraded_submissions =
      shed_degraded_submissions - rhs.shed_degraded_submissions;
  d.difficulty_sum = difficulty_sum - rhs.difficulty_sum;
  return d;
}

ServerStats PowServer::stats() const { return stats_.snapshot(); }

std::size_t PowServer::memory_bytes() const {
  return sizeof(PowServer) + rate_limiter_.memory_bytes() +
         cache_.memory_bytes() + verifier_.replay_memory_bytes();
}

void PowServer::note_overload() {
  stats_.rejected_overload.fetch_add(1, kRelaxed);
}

void PowServer::note_queue_shed(bool is_request) {
  if (is_request) {
    stats_.shed_queue_requests.fetch_add(1, kRelaxed);
  } else {
    stats_.shed_queue_submissions.fetch_add(1, kRelaxed);
  }
}

void PowServer::note_queue_sojourn(std::int64_t now_ms, double sojourn_ms) {
  ladder_.record_sojourn(now_ms, sojourn_ms);
}

std::int64_t PowServer::effective_deadline_ms(std::int64_t deadline_ms,
                                              std::int64_t arrival_ms) const {
  if (deadline_ms != 0) return deadline_ms;
  if (config_.default_deadline <= common::Duration::zero()) return 0;
  return arrival_ms + std::chrono::duration_cast<std::chrono::milliseconds>(
                          config_.default_deadline)
                          .count();
}

std::uint32_t PowServer::retry_after_hint_ms() const {
  return ladder_.retry_after_ms();
}

Response PowServer::shed_response(std::uint64_t request_id,
                                  const char* detail) const {
  Response r;
  r.request_id = request_id;
  r.status = common::ErrorCode::kUnavailable;
  r.body = detail;
  r.retry_after_ms = retry_after_hint_ms();
  return r;
}

ScoringTrace PowServer::last_trace() const {
  ScoringTrace t;
  t.score = trace_score_.load(kRelaxed);
  t.difficulty = trace_difficulty_.load(kRelaxed);
  t.from_cache = trace_from_cache_.load(kRelaxed);
  return t;
}

common::ThreadPool& PowServer::ensure_pool() {
  std::call_once(pool_once_, [this] {
    pool_ = std::make_unique<common::ThreadPool>(config_.verify_threads,
                                                 config_.pin_verify_threads);
  });
  return *pool_;
}

std::variant<Challenge, Response> PowServer::on_request(const Request& request,
                                                        ScoringTrace* trace) {
  stats_.requests.fetch_add(1, kRelaxed);

  const auto ip = features::IpAddress::parse(request.client_ip);
  if (!ip) {
    stats_.rejected_malformed.fetch_add(1, kRelaxed);
    return Response{request.request_id, common::ErrorCode::kInvalidArgument,
                    "unparsable client ip"};
  }

  if (config_.rate_limiter_enabled && !rate_limiter_.allow(*ip)) {
    stats_.rejected_rate_limited.fetch_add(1, kRelaxed);
    return Response{request.request_id, common::ErrorCode::kRateLimited,
                    "challenge rate exceeded"};
  }

  // Overload control: offered load feeds the ladder's pressure signal,
  // then dead work (expired deadline) is shed before any scoring cost.
  const std::int64_t arrival_ms = now_ms();
  ladder_.record_arrival(arrival_ms);
  const std::int64_t deadline =
      effective_deadline_ms(request.deadline_ms, arrival_ms);
  if (deadline != 0 && arrival_ms > deadline) {
    stats_.shed_deadline_requests.fetch_add(1, kRelaxed);
    return shed_response(request.request_id, "deadline exceeded");
  }

  if (!config_.pow_enabled) {
    // Baseline mode: no puzzle, immediate service.
    stats_.served.fetch_add(1, kRelaxed);
    stats_.served_without_pow.fetch_add(1, kRelaxed);
    return Response{request.request_id, common::ErrorCode::kOk,
                    config_.resource_body};
  }

  // Degradation ladder, issuance side: L2 sheds every new issuance (a
  // shed issuance wastes no client work); L3 admits issuance only for
  // clients whose *cached* reputation is already benign — scoring a
  // fresh client is exactly the work L3 refuses to spend.
  const int level = ladder_.level();
  if (level >= 2) {
    bool admit = false;
    if (level >= 3 && config_.reputation_cache_enabled) {
      if (const auto cached = cache_.lookup(*ip)) {
        admit = *cached <= config_.degrade.l3_admit_max_score;
      }
    }
    if (!admit) {
      stats_.shed_degraded_requests.fetch_add(1, kRelaxed);
      return shed_response(request.request_id, "degraded: issuance shed");
    }
  }

  // (2) AI model → reputation score (optionally via the cache).
  ScoringTrace local;
  if (config_.reputation_cache_enabled) {
    if (const auto cached = cache_.lookup(*ip)) {
      local.score = *cached;
      local.from_cache = true;
    } else {
      local.score = model_->score(request.features);
      cache_.update(*ip, local.score);
    }
  } else {
    local.score = model_->score(request.features);
  }

  // (3) policy → difficulty. Randomized policies draw from a private
  // counter-based stream keyed by the request's stable puzzle id: no
  // lock, and the draw is reproducible from (policy_seed, puzzle_id)
  // alone — arrival order cannot permute it.
  const std::uint64_t puzzle_id =
      generator_.derive_puzzle_id(request.client_ip, request.request_id);
  common::Rng policy_stream =
      common::stream_rng(config_.policy_seed, puzzle_id);
  local.difficulty = policy_->difficulty(local.score, policy_stream);
  if (level >= 1 && config_.degrade.l1_difficulty_floor > 0) {
    local.difficulty =
        std::max(local.difficulty, config_.degrade.l1_difficulty_floor);
  }

  // (4) issue the puzzle under the same stable identity.
  stats_.challenges_issued.fetch_add(1, kRelaxed);
  stats_.difficulty_sum.fetch_add(local.difficulty, kRelaxed);
  trace_score_.store(local.score, kRelaxed);
  trace_difficulty_.store(local.difficulty, kRelaxed);
  trace_from_cache_.store(local.from_cache, kRelaxed);
  if (trace != nullptr) *trace = local;
  return Challenge{request.request_id,
                   generator_.issue_with_id(puzzle_id, request.client_ip,
                                            local.difficulty)};
}

std::vector<std::variant<Challenge, Response>> PowServer::on_request_batch(
    std::span<const Request> requests) {
  std::vector<std::variant<Challenge, Response>> results(requests.size());
  ensure_pool().parallel_for(requests.size(), [&](std::size_t i) {
    results[i] = on_request(requests[i]);
  });
  return results;
}

std::optional<Response> PowServer::precheck_submission(
    const Submission& submission, std::int64_t arrival_ms, int level) {
  // Deadline first: the client has given up, verification would be dead
  // work however valid the solution is.
  const std::int64_t deadline =
      effective_deadline_ms(submission.deadline_ms, arrival_ms);
  if (deadline != 0 && arrival_ms > deadline) {
    stats_.shed_deadline_submissions.fetch_add(1, kRelaxed);
    return shed_response(submission.request_id, "deadline exceeded");
  }

  if (level >= 3) {
    // L3: only reputation-proven clients get verification cycles. The
    // bound ip (what the puzzle was issued to) keys the cache lookup.
    bool admit = false;
    if (config_.reputation_cache_enabled) {
      if (const auto ip =
              features::IpAddress::parse(submission.puzzle.client_binding)) {
        if (const auto cached = cache_.lookup(*ip)) {
          admit = *cached <= config_.degrade.l3_admit_max_score;
        }
      }
    }
    if (!admit) {
      stats_.shed_degraded_submissions.fetch_add(1, kRelaxed);
      return shed_response(submission.request_id,
                           "degraded: admission by reputation only");
    }
  }

  if (level >= 1 && config_.degrade.l1_ttl > common::Duration::zero()) {
    // L1+: shrink the effective TTL at verification time (the puzzle
    // wire format and MAC are untouched — this is a server-side policy
    // on its own clock).
    const auto ttl_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                            config_.degrade.l1_ttl)
                            .count();
    if (arrival_ms - submission.puzzle.issued_at_ms > ttl_ms) {
      return finalize_submission(
          submission.request_id,
          common::err(common::ErrorCode::kExpired, "degraded ttl exceeded"));
    }
  }
  return std::nullopt;
}

Response PowServer::on_submission(const Submission& submission,
                                  const std::string& observed_ip) {
  const std::int64_t arrival_ms = now_ms();
  ladder_.poll(arrival_ms);
  if (auto early =
          precheck_submission(submission, arrival_ms, ladder_.level())) {
    return *early;
  }
  return finalize_submission(
      submission.request_id,
      verifier_.verify(submission.puzzle, submission.solution, observed_ip));
}

std::vector<Response> PowServer::on_submission_batch(
    std::span<const Submission> submissions,
    std::span<const std::string> observed_ips) {
  if (!observed_ips.empty() && observed_ips.size() != submissions.size()) {
    throw std::invalid_argument(
        "PowServer::on_submission_batch: observed_ips size mismatch");
  }
  std::call_once(batch_verifier_once_, [this] {
    batch_verifier_ =
        std::make_unique<pow::BatchVerifier>(verifier_, ensure_pool());
  });

  // Overload prechecks first: shed entries resolve without touching the
  // verifier, and only the survivors are batched onto the pool.
  const std::int64_t arrival_ms = now_ms();
  ladder_.poll(arrival_ms);
  const int level = ladder_.level();
  std::vector<Response> responses(submissions.size());
  std::vector<pow::VerificationJob> jobs;
  std::vector<std::size_t> job_slots;
  jobs.reserve(submissions.size());
  job_slots.reserve(submissions.size());
  for (std::size_t i = 0; i < submissions.size(); ++i) {
    if (auto early = precheck_submission(submissions[i], arrival_ms, level)) {
      responses[i] = std::move(*early);
      continue;
    }
    job_slots.push_back(i);
    jobs.push_back({&submissions[i].puzzle, &submissions[i].solution,
                    observed_ips.empty() ? nullptr : &observed_ips[i]});
  }

  if (!jobs.empty()) {
    const std::vector<common::Status> statuses =
        batch_verifier_->verify_batch(jobs);
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      responses[job_slots[j]] = finalize_submission(
          submissions[job_slots[j]].request_id, statuses[j]);
    }
  }
  return responses;
}

Response PowServer::finalize_submission(std::uint64_t request_id,
                                        const common::Status& status) {
  if (status.ok()) {
    // (6)-(7): solved correctly — serve the resource.
    stats_.served.fetch_add(1, kRelaxed);
    return Response{request_id, common::ErrorCode::kOk,
                    config_.resource_body};
  }
  switch (status.error().code) {
    case common::ErrorCode::kExpired:
      stats_.rejected_expired.fetch_add(1, kRelaxed);
      break;
    case common::ErrorCode::kReplay:
      stats_.rejected_replay.fetch_add(1, kRelaxed);
      break;
    case common::ErrorCode::kBadSolution:
      stats_.rejected_bad_solution.fetch_add(1, kRelaxed);
      break;
    default:
      stats_.rejected_binding.fetch_add(1, kRelaxed);
      break;
  }
  return Response{request_id, status.error().code, status.error().message};
}

}  // namespace powai::framework
