#include "framework/server.hpp"

#include <stdexcept>

namespace powai::framework {

namespace {
constexpr auto kRelaxed = std::memory_order_relaxed;
}

PowServer::PowServer(const common::Clock& clock,
                     const reputation::IReputationModel& model,
                     const policy::IPolicy& pol, ServerConfig config)
    : model_(&model),
      policy_(&pol),
      config_(std::move(config)),
      generator_(clock, config_.master_secret),
      verifier_(clock, config_.master_secret, config_.verifier),
      cache_(clock, config_.cache, config_.cache_shards),
      rate_limiter_(clock, config_.rate_limiter) {
  if (!model.fitted()) {
    throw std::invalid_argument("PowServer: reputation model is not fitted");
  }
}

ServerStats PowServer::AtomicStats::snapshot() const {
  ServerStats s;
  s.requests = requests.load(kRelaxed);
  s.challenges_issued = challenges_issued.load(kRelaxed);
  s.served = served.load(kRelaxed);
  s.served_without_pow = served_without_pow.load(kRelaxed);
  s.rejected_rate_limited = rejected_rate_limited.load(kRelaxed);
  s.rejected_malformed = rejected_malformed.load(kRelaxed);
  s.rejected_bad_solution = rejected_bad_solution.load(kRelaxed);
  s.rejected_expired = rejected_expired.load(kRelaxed);
  s.rejected_replay = rejected_replay.load(kRelaxed);
  s.rejected_binding = rejected_binding.load(kRelaxed);
  s.rejected_overload = rejected_overload.load(kRelaxed);
  s.difficulty_sum = difficulty_sum.load(kRelaxed);
  return s;
}

ServerStats ServerStats::operator-(const ServerStats& rhs) const {
  ServerStats d;
  d.requests = requests - rhs.requests;
  d.challenges_issued = challenges_issued - rhs.challenges_issued;
  d.served = served - rhs.served;
  d.served_without_pow = served_without_pow - rhs.served_without_pow;
  d.rejected_rate_limited = rejected_rate_limited - rhs.rejected_rate_limited;
  d.rejected_malformed = rejected_malformed - rhs.rejected_malformed;
  d.rejected_bad_solution = rejected_bad_solution - rhs.rejected_bad_solution;
  d.rejected_expired = rejected_expired - rhs.rejected_expired;
  d.rejected_replay = rejected_replay - rhs.rejected_replay;
  d.rejected_binding = rejected_binding - rhs.rejected_binding;
  d.rejected_overload = rejected_overload - rhs.rejected_overload;
  d.difficulty_sum = difficulty_sum - rhs.difficulty_sum;
  return d;
}

ServerStats PowServer::stats() const { return stats_.snapshot(); }

std::size_t PowServer::memory_bytes() const {
  return sizeof(PowServer) + rate_limiter_.memory_bytes() +
         cache_.memory_bytes() + verifier_.replay_memory_bytes();
}

void PowServer::note_overload() {
  stats_.rejected_overload.fetch_add(1, kRelaxed);
}

ScoringTrace PowServer::last_trace() const {
  ScoringTrace t;
  t.score = trace_score_.load(kRelaxed);
  t.difficulty = trace_difficulty_.load(kRelaxed);
  t.from_cache = trace_from_cache_.load(kRelaxed);
  return t;
}

common::ThreadPool& PowServer::ensure_pool() {
  std::call_once(pool_once_, [this] {
    pool_ = std::make_unique<common::ThreadPool>(config_.verify_threads,
                                                 config_.pin_verify_threads);
  });
  return *pool_;
}

std::variant<Challenge, Response> PowServer::on_request(const Request& request,
                                                        ScoringTrace* trace) {
  stats_.requests.fetch_add(1, kRelaxed);

  const auto ip = features::IpAddress::parse(request.client_ip);
  if (!ip) {
    stats_.rejected_malformed.fetch_add(1, kRelaxed);
    return Response{request.request_id, common::ErrorCode::kInvalidArgument,
                    "unparsable client ip"};
  }

  if (config_.rate_limiter_enabled && !rate_limiter_.allow(*ip)) {
    stats_.rejected_rate_limited.fetch_add(1, kRelaxed);
    return Response{request.request_id, common::ErrorCode::kRateLimited,
                    "challenge rate exceeded"};
  }

  if (!config_.pow_enabled) {
    // Baseline mode: no puzzle, immediate service.
    stats_.served.fetch_add(1, kRelaxed);
    stats_.served_without_pow.fetch_add(1, kRelaxed);
    return Response{request.request_id, common::ErrorCode::kOk,
                    config_.resource_body};
  }

  // (2) AI model → reputation score (optionally via the cache).
  ScoringTrace local;
  if (config_.reputation_cache_enabled) {
    if (const auto cached = cache_.lookup(*ip)) {
      local.score = *cached;
      local.from_cache = true;
    } else {
      local.score = model_->score(request.features);
      cache_.update(*ip, local.score);
    }
  } else {
    local.score = model_->score(request.features);
  }

  // (3) policy → difficulty. Randomized policies draw from a private
  // counter-based stream keyed by the request's stable puzzle id: no
  // lock, and the draw is reproducible from (policy_seed, puzzle_id)
  // alone — arrival order cannot permute it.
  const std::uint64_t puzzle_id =
      generator_.derive_puzzle_id(request.client_ip, request.request_id);
  common::Rng policy_stream =
      common::stream_rng(config_.policy_seed, puzzle_id);
  local.difficulty = policy_->difficulty(local.score, policy_stream);

  // (4) issue the puzzle under the same stable identity.
  stats_.challenges_issued.fetch_add(1, kRelaxed);
  stats_.difficulty_sum.fetch_add(local.difficulty, kRelaxed);
  trace_score_.store(local.score, kRelaxed);
  trace_difficulty_.store(local.difficulty, kRelaxed);
  trace_from_cache_.store(local.from_cache, kRelaxed);
  if (trace != nullptr) *trace = local;
  return Challenge{request.request_id,
                   generator_.issue_with_id(puzzle_id, request.client_ip,
                                            local.difficulty)};
}

std::vector<std::variant<Challenge, Response>> PowServer::on_request_batch(
    std::span<const Request> requests) {
  std::vector<std::variant<Challenge, Response>> results(requests.size());
  ensure_pool().parallel_for(requests.size(), [&](std::size_t i) {
    results[i] = on_request(requests[i]);
  });
  return results;
}

Response PowServer::on_submission(const Submission& submission,
                                  const std::string& observed_ip) {
  return finalize_submission(
      submission.request_id,
      verifier_.verify(submission.puzzle, submission.solution, observed_ip));
}

std::vector<Response> PowServer::on_submission_batch(
    std::span<const Submission> submissions,
    std::span<const std::string> observed_ips) {
  if (!observed_ips.empty() && observed_ips.size() != submissions.size()) {
    throw std::invalid_argument(
        "PowServer::on_submission_batch: observed_ips size mismatch");
  }
  std::call_once(batch_verifier_once_, [this] {
    batch_verifier_ =
        std::make_unique<pow::BatchVerifier>(verifier_, ensure_pool());
  });

  std::vector<pow::VerificationJob> jobs;
  jobs.reserve(submissions.size());
  for (std::size_t i = 0; i < submissions.size(); ++i) {
    jobs.push_back({&submissions[i].puzzle, &submissions[i].solution,
                    observed_ips.empty() ? nullptr : &observed_ips[i]});
  }

  const std::vector<common::Status> statuses =
      batch_verifier_->verify_batch(jobs);

  std::vector<Response> responses;
  responses.reserve(submissions.size());
  for (std::size_t i = 0; i < submissions.size(); ++i) {
    responses.push_back(
        finalize_submission(submissions[i].request_id, statuses[i]));
  }
  return responses;
}

Response PowServer::finalize_submission(std::uint64_t request_id,
                                        const common::Status& status) {
  if (status.ok()) {
    // (6)-(7): solved correctly — serve the resource.
    stats_.served.fetch_add(1, kRelaxed);
    return Response{request_id, common::ErrorCode::kOk,
                    config_.resource_body};
  }
  switch (status.error().code) {
    case common::ErrorCode::kExpired:
      stats_.rejected_expired.fetch_add(1, kRelaxed);
      break;
    case common::ErrorCode::kReplay:
      stats_.rejected_replay.fetch_add(1, kRelaxed);
      break;
    case common::ErrorCode::kBadSolution:
      stats_.rejected_bad_solution.fetch_add(1, kRelaxed);
      break;
    default:
      stats_.rejected_binding.fetch_add(1, kRelaxed);
      break;
  }
  return Response{request_id, status.error().code, status.error().message};
}

}  // namespace powai::framework
