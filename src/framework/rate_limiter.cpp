#include "framework/rate_limiter.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <stdexcept>

#include "common/hashing.hpp"

namespace powai::framework {

namespace {
constexpr double kTokenOne = 65536.0;  ///< fixed-point scale (16.16 / 48.16)

std::uint64_t pack(double tokens, std::uint32_t ms) {
  const auto fp = static_cast<std::uint64_t>(std::llround(tokens * kTokenOne));
  return (fp << 32) | ms;
}

double unpack_tokens(std::uint64_t word) {
  return static_cast<double>(word >> 32) / kTokenOne;
}

std::uint32_t unpack_ms(std::uint64_t word) {
  return static_cast<std::uint32_t>(word);
}

std::uint64_t tokens_to_fp(double tokens) {
  return static_cast<std::uint64_t>(std::llround(tokens * kTokenOne));
}

#if defined(POWAI_RATE_LIMITER_CAS128)
unsigned __int128 pack_wide(std::uint64_t tokens_fp, std::uint64_t ms) {
  return (static_cast<unsigned __int128>(tokens_fp) << 64) | ms;
}

std::uint64_t wide_tokens_fp(unsigned __int128 word) {
  return static_cast<std::uint64_t>(word >> 64);
}

std::uint64_t wide_ms(unsigned __int128 word) {
  return static_cast<std::uint64_t>(word);
}
#endif

/// Per-entry heap cost estimate for a node-based hash map: the node
/// (key+value+next pointer) plus its share of the bucket array.
template <typename Map>
std::size_t map_memory_bytes(const Map& map) {
  return map.bucket_count() * sizeof(void*) +
         map.size() * (sizeof(typename Map::value_type) + 2 * sizeof(void*));
}
}  // namespace

RateLimiter::RateLimiter(const common::Clock& clock, RateLimiterConfig config)
    : clock_(&clock), config_(config) {
  if (!(config_.tokens_per_second > 0.0) || !(config_.burst >= 1.0)) {
    throw std::invalid_argument("RateLimiter: need rate > 0 and burst >= 1");
  }
  // Written as !(x <= cap) so NaN/Inf bursts are rejected too. Beyond the
  // wide word's 48.16 range we refuse outright — truncating to what the
  // word can hold would silently under-enforce the configured ceiling.
  if (!(config_.burst <= kMaxWideBurst)) {
    throw std::invalid_argument(
        "RateLimiter: burst exceeds kMaxWideBurst — not representable in the "
        "wide bucket word, refusing to truncate");
  }
  wide_ = config_.burst > kMaxBurst;
  if (config_.max_tracked_ips == 0) {
    throw std::invalid_argument("RateLimiter: max_tracked_ips == 0");
  }
  // Striping splits the tracking budget, and an eviction re-admits the
  // IP at full burst — so a shard whose slice is tiny lets colliding
  // IPs launder their spent balance by evicting each other while the
  // global budget is mostly free. Keep every shard's slice comfortably
  // above the collision scale, collapsing to one lock for small budgets
  // (where the pre-sharding exact-global-ceiling semantics return).
  constexpr std::size_t kMinIpsPerShard = 1024;
  std::size_t n = common::round_up_pow2(std::max<std::size_t>(1, config_.shards));
  while (n > 1 && config_.max_tracked_ips / n < kMinIpsPerShard) n >>= 1;
  shard_mask_ = static_cast<std::uint32_t>(n - 1);
  shards_ = std::make_unique<Shard[]>(n);
  // Distribute the tracking budget exactly so the global ceiling holds.
  for (std::size_t i = 0; i < n; ++i) {
    shards_[i].max_ips = common::split_slice(config_.max_tracked_ips, n, i);
  }
}

RateLimiter::Shard& RateLimiter::shard_for(features::IpAddress ip) const {
  // IPv4 addresses cluster in the low octets; the finalizer spreads them
  // across the power-of-two mask.
  return shards_[common::mix32(ip.value()) & shard_mask_];
}

std::uint64_t RateLimiter::now_ms64() const {
  return static_cast<std::uint64_t>(common::to_millis(clock_->now()));
}

void RateLimiter::evict_one(Shard& s, std::uint64_t now_ms) {
  // Clock-hand sweep over the hash-bucket array: look at a handful of
  // resident entries past the cursor and drop the stalest of them. The
  // map sits at its per-shard ceiling whenever this runs, so the load
  // factor bounds how many empty hash buckets the hand crosses and the
  // cost is O(1) amortized — a full stalest-entry scan would be O(n) per
  // new IP once the ceiling is hit, which is exactly the issuer-side
  // hotspot this limiter exists to prevent.
  constexpr std::size_t kCandidates = 4;
  const auto sweep = [&](auto& map, auto age_of) {
    const std::size_t hash_buckets = map.bucket_count();
    std::size_t seen = 0;
    bool have_victim = false;
    std::uint32_t victim = 0;
    std::uint64_t oldest_age_ms = 0;
    for (std::size_t step = 0; step < hash_buckets && seen < kCandidates;
         ++step) {
      const std::size_t bi = s.hand++ % hash_buckets;
      for (auto it = map.begin(bi); it != map.end(bi); ++it) {
        const std::uint64_t age_ms = age_of(it->second);
        if (!have_victim || age_ms > oldest_age_ms) {
          have_victim = true;
          victim = it->first;
          oldest_age_ms = age_ms;
        }
        if (++seen >= kCandidates) break;
      }
    }
    if (have_victim) map.erase(victim);
  };
  if (wide_) {
    // 64-bit stamps never wrap, so age is a plain difference. The caller
    // holds the shard lock exclusively — no shared-path consume can be
    // mid-flight — so the bucket state is safe to read directly.
    sweep(s.wide_buckets, [&](const WideBucket& b) -> std::uint64_t {
#if defined(POWAI_RATE_LIMITER_CAS128)
      return now_ms - wide_ms(__atomic_load_n(&b.word, __ATOMIC_RELAXED));
#else
      return now_ms - b.last_ms;
#endif
    });
  } else {
    // Staleness as modular distance from now, not an absolute stamp
    // comparison — otherwise the ~49-day wrap of the ms32 clock would
    // invert the order and evict the *freshest* buckets.
    const auto now32 = static_cast<std::uint32_t>(now_ms);
    sweep(s.buckets, [&](const Bucket& b) -> std::uint64_t {
      return now32 - unpack_ms(b.packed.load(std::memory_order_relaxed));
    });
  }
}

RateLimiter::Bucket& RateLimiter::bucket_for(Shard& s, features::IpAddress ip,
                                             std::uint32_t now_ms) {
  const auto it = s.buckets.find(ip.value());
  if (it != s.buckets.end()) return it->second;
  if (s.buckets.size() >= s.max_ips) evict_one(s, now_ms);
  Bucket& b = s.buckets[ip.value()];
  b.packed.store(pack(config_.burst, now_ms), std::memory_order_relaxed);
  return b;
}

RateLimiter::WideBucket& RateLimiter::wide_bucket_for(Shard& s,
                                                      features::IpAddress ip,
                                                      std::uint64_t now_ms) {
  const auto it = s.wide_buckets.find(ip.value());
  if (it != s.wide_buckets.end()) return it->second;
  if (s.wide_buckets.size() >= s.max_ips) evict_one(s, now_ms);
  WideBucket& b = s.wide_buckets[ip.value()];
#if defined(POWAI_RATE_LIMITER_CAS128)
  __atomic_store_n(&b.word, pack_wide(tokens_to_fp(config_.burst), now_ms),
                   __ATOMIC_RELAXED);
#else
  b.tokens_fp = tokens_to_fp(config_.burst);
  b.last_ms = now_ms;
#endif
  return b;
}

double RateLimiter::refreshed_tokens(std::uint64_t word,
                                     std::uint32_t now_ms) const {
  // Modular difference read as *signed*: correct across one wrap of the
  // 32-bit millisecond clock (~49 days), and negative — a caller that
  // captured `now` just before a racing thread stored a newer stamp —
  // clamps to zero instead of wrapping to ~49 days of free refill.
  const auto delta_ms = static_cast<std::int32_t>(now_ms - unpack_ms(word));
  if (delta_ms <= 0) return unpack_tokens(word);
  return std::min(config_.burst,
                  unpack_tokens(word) + (static_cast<double>(delta_ms) /
                                         1000.0) * config_.tokens_per_second);
}

double RateLimiter::refreshed_tokens_wide(std::uint64_t tokens_fp,
                                          std::uint64_t last_ms,
                                          std::uint64_t now_ms) const {
  // 64-bit stamps are monotone-in-fact (no wrap); a stale `now` from a
  // racing caller clamps to zero elapsed rather than refilling.
  const double base = static_cast<double>(tokens_fp) / kTokenOne;
  if (now_ms <= last_ms) return base;
  return std::min(config_.burst,
                  base + (static_cast<double>(now_ms - last_ms) / 1000.0) *
                             config_.tokens_per_second);
}

bool RateLimiter::consume(Bucket& b, std::uint32_t now_ms) {
  std::uint64_t cur = b.packed.load(std::memory_order_relaxed);
  for (;;) {
    const std::uint32_t last_ms = unpack_ms(cur);
    // Timestamps must stay monotone under the modular order: a thread
    // whose `now` lost the race keeps the newer stamp, otherwise the
    // regressed stamp would hand the next caller the same elapsed
    // credit twice.
    const std::uint32_t fresh_ms =
        static_cast<std::int32_t>(now_ms - last_ms) > 0 ? now_ms : last_ms;
    const double have = refreshed_tokens(cur, now_ms);
    const bool granted = have >= 1.0;
    std::uint64_t next;
    if (granted) {
      next = pack(have - 1.0, fresh_ms);
    } else {
      next = pack(have, fresh_ms);
      if ((next >> 32) == (cur >> 32)) {
        // Deny with no whole fixed-point quantum earned: leave the word
        // untouched so the fractional credit keeps accruing against the
        // old stamp — advancing the stamp while rounding the credit
        // away would starve low-rate buckets under polling forever.
        next = cur;
      }
    }
    if (b.packed.compare_exchange_weak(cur, next, std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
      return granted;
    }
  }
}

bool RateLimiter::consume_wide(WideBucket& b, std::uint64_t now_ms) {
#if defined(POWAI_RATE_LIMITER_CAS128)
  unsigned __int128 cur = __atomic_load_n(&b.word, __ATOMIC_RELAXED);
  for (;;) {
    const std::uint64_t last_ms = wide_ms(cur);
    const std::uint64_t fresh_ms = now_ms > last_ms ? now_ms : last_ms;
    const double have =
        refreshed_tokens_wide(wide_tokens_fp(cur), last_ms, now_ms);
    const bool granted = have >= 1.0;
    const std::uint64_t next_fp = tokens_to_fp(granted ? have - 1.0 : have);
    unsigned __int128 next;
    if (!granted && next_fp == wide_tokens_fp(cur)) {
      // Same deny-without-earned-quantum rule as the packed path: keep
      // the old stamp so fractional credit is never rounded away.
      next = cur;
    } else {
      next = pack_wide(next_fp, fresh_ms);
    }
    if (__atomic_compare_exchange_n(&b.word, &cur, next, /*weak=*/true,
                                    __ATOMIC_ACQ_REL, __ATOMIC_RELAXED)) {
      return granted;
    }
  }
#else
  // Per-bucket lock: callers racing distinct IPs never contend; callers
  // racing one IP serialize on exactly this bucket's mutex, keeping the
  // grant count exact.
  std::lock_guard<std::mutex> lk(b.mu);
  const double have = refreshed_tokens_wide(b.tokens_fp, b.last_ms, now_ms);
  const bool granted = have >= 1.0;
  const std::uint64_t next_fp = tokens_to_fp(granted ? have - 1.0 : have);
  if (granted || next_fp != b.tokens_fp) {
    b.tokens_fp = next_fp;
    b.last_ms = std::max(b.last_ms, now_ms);
  }
  return granted;
#endif
}

bool RateLimiter::allow(features::IpAddress ip) {
  Shard& s = shard_for(ip);
  const std::uint64_t now64 = now_ms64();
  const auto now32 = static_cast<std::uint32_t>(now64);
  {
    // Fast path: bucket exists — CAS (or bucket-local lock) under the
    // shared lock (held only so eviction cannot erase the bucket
    // mid-consume; allows never block each other here).
    std::shared_lock<std::shared_mutex> lock(s.mu);
    if (wide_) {
      const auto it = s.wide_buckets.find(ip.value());
      if (it != s.wide_buckets.end()) return consume_wide(it->second, now64);
    } else {
      const auto it = s.buckets.find(ip.value());
      if (it != s.buckets.end()) return consume(it->second, now32);
    }
  }
  // Cold path: first sighting of this IP (or it was evicted) — take the
  // exclusive lock to create, then consume. Another thread may have
  // created it between the two locks; the *_bucket_for helpers handle
  // both cases.
  std::unique_lock<std::shared_mutex> lock(s.mu);
  if (wide_) return consume_wide(wide_bucket_for(s, ip, now64), now64);
  return consume(bucket_for(s, ip, now32), now32);
}

double RateLimiter::tokens(features::IpAddress ip) const {
  const Shard& s = shard_for(ip);
  const std::uint64_t now64 = now_ms64();
  std::shared_lock<std::shared_mutex> lock(s.mu);
  if (wide_) {
    const auto it = s.wide_buckets.find(ip.value());
    if (it == s.wide_buckets.end()) return config_.burst;
#if defined(POWAI_RATE_LIMITER_CAS128)
    const unsigned __int128 word =
        __atomic_load_n(&it->second.word, __ATOMIC_RELAXED);
    return refreshed_tokens_wide(wide_tokens_fp(word), wide_ms(word), now64);
#else
    std::lock_guard<std::mutex> lk(it->second.mu);
    return refreshed_tokens_wide(it->second.tokens_fp, it->second.last_ms,
                                 now64);
#endif
  }
  const auto it = s.buckets.find(ip.value());
  if (it == s.buckets.end()) return config_.burst;
  // Pure read: share allow()'s arithmetic without writing the word.
  return refreshed_tokens(it->second.packed.load(std::memory_order_relaxed),
                          static_cast<std::uint32_t>(now64));
}

std::size_t RateLimiter::tracked_ips() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i <= shard_mask_; ++i) {
    std::shared_lock<std::shared_mutex> lock(shards_[i].mu);
    total += wide_ ? shards_[i].wide_buckets.size() : shards_[i].buckets.size();
  }
  return total;
}

std::size_t RateLimiter::memory_bytes() const {
  std::size_t total = shard_count() * sizeof(Shard);
  for (std::size_t i = 0; i <= shard_mask_; ++i) {
    std::shared_lock<std::shared_mutex> lock(shards_[i].mu);
    total += map_memory_bytes(shards_[i].buckets);
    total += map_memory_bytes(shards_[i].wide_buckets);
  }
  return total;
}

}  // namespace powai::framework
