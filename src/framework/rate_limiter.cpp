#include "framework/rate_limiter.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/hashing.hpp"

namespace powai::framework {

RateLimiter::RateLimiter(const common::Clock& clock, RateLimiterConfig config)
    : clock_(&clock), config_(config) {
  if (!(config_.tokens_per_second > 0.0) || !(config_.burst >= 1.0)) {
    throw std::invalid_argument("RateLimiter: need rate > 0 and burst >= 1");
  }
  if (config_.max_tracked_ips == 0) {
    throw std::invalid_argument("RateLimiter: max_tracked_ips == 0");
  }
  // Striping splits the tracking budget, and an eviction re-admits the
  // IP at full burst — so a shard whose slice is tiny lets colliding
  // IPs launder their spent balance by evicting each other while the
  // global budget is mostly free. Keep every shard's slice comfortably
  // above the collision scale, collapsing to one lock for small budgets
  // (where the pre-sharding exact-global-ceiling semantics return).
  constexpr std::size_t kMinIpsPerShard = 1024;
  std::size_t n = common::round_up_pow2(std::max<std::size_t>(1, config_.shards));
  while (n > 1 && config_.max_tracked_ips / n < kMinIpsPerShard) n >>= 1;
  shard_mask_ = static_cast<std::uint32_t>(n - 1);
  shards_ = std::make_unique<Shard[]>(n);
  // Distribute the tracking budget exactly so the global ceiling holds.
  for (std::size_t i = 0; i < n; ++i) {
    shards_[i].max_ips = common::split_slice(config_.max_tracked_ips, n, i);
  }
}

RateLimiter::Shard& RateLimiter::shard_for(features::IpAddress ip) const {
  // IPv4 addresses cluster in the low octets; the finalizer spreads them
  // across the power-of-two mask.
  return shards_[common::mix32(ip.value()) & shard_mask_];
}

void RateLimiter::evict_one(Shard& s) {
  // Clock-hand sweep over the hash-bucket array: look at a handful of
  // resident entries past the cursor and drop the stalest of them. The
  // map sits at its per-shard ceiling whenever this runs, so the load
  // factor bounds how many empty hash buckets the hand crosses and the
  // cost is O(1) amortized — a full stalest-entry scan would be O(n) per
  // new IP once the ceiling is hit, which is exactly the issuer-side
  // hotspot this limiter exists to prevent.
  constexpr std::size_t kCandidates = 4;
  auto& map = s.buckets;
  const std::size_t hash_buckets = map.bucket_count();
  std::size_t seen = 0;
  bool have_victim = false;
  std::uint32_t victim = 0;
  common::TimePoint oldest{};
  for (std::size_t step = 0; step < hash_buckets && seen < kCandidates;
       ++step) {
    const std::size_t bi = s.hand++ % hash_buckets;
    for (auto it = map.begin(bi); it != map.end(bi); ++it) {
      if (!have_victim || it->second.refilled_at < oldest) {
        have_victim = true;
        victim = it->first;
        oldest = it->second.refilled_at;
      }
      if (++seen >= kCandidates) break;
    }
  }
  if (have_victim) map.erase(victim);
}

RateLimiter::Bucket& RateLimiter::bucket_for(Shard& s, features::IpAddress ip) {
  const auto it = s.buckets.find(ip.value());
  if (it != s.buckets.end()) return it->second;
  if (s.buckets.size() >= s.max_ips) evict_one(s);
  return s.buckets.emplace(ip.value(), Bucket{config_.burst, clock_->now()})
      .first->second;
}

void RateLimiter::refill(Bucket& b) const {
  const common::TimePoint now = clock_->now();
  const double elapsed_s =
      std::chrono::duration<double>(now - b.refilled_at).count();
  if (elapsed_s > 0.0) {
    b.tokens = std::min(config_.burst,
                        b.tokens + elapsed_s * config_.tokens_per_second);
    b.refilled_at = now;
  }
}

bool RateLimiter::allow(features::IpAddress ip) {
  Shard& s = shard_for(ip);
  std::lock_guard<std::mutex> lock(s.mu);
  Bucket& b = bucket_for(s, ip);
  refill(b);
  if (b.tokens < 1.0) return false;
  b.tokens -= 1.0;
  return true;
}

double RateLimiter::tokens(features::IpAddress ip) const {
  const Shard& s = shard_for(ip);
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.buckets.find(ip.value());
  if (it == s.buckets.end()) return config_.burst;
  // Refill a copy so the diagnostic shares allow()'s arithmetic without
  // mutating the live bucket.
  Bucket refreshed = it->second;
  refill(refreshed);
  return refreshed.tokens;
}

std::size_t RateLimiter::tracked_ips() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i <= shard_mask_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    total += shards_[i].buckets.size();
  }
  return total;
}

}  // namespace powai::framework
