#include "framework/rate_limiter.hpp"

#include <algorithm>
#include <stdexcept>

namespace powai::framework {

RateLimiter::RateLimiter(const common::Clock& clock, RateLimiterConfig config)
    : clock_(&clock), config_(config) {
  if (!(config_.tokens_per_second > 0.0) || !(config_.burst >= 1.0)) {
    throw std::invalid_argument("RateLimiter: need rate > 0 and burst >= 1");
  }
  if (config_.max_tracked_ips == 0) {
    throw std::invalid_argument("RateLimiter: max_tracked_ips == 0");
  }
}

RateLimiter::Bucket& RateLimiter::bucket_for(features::IpAddress ip) {
  const auto it = buckets_.find(ip.value());
  if (it != buckets_.end()) return it->second;
  if (buckets_.size() >= config_.max_tracked_ips) {
    // Drop the stalest bucket. Linear scan: hitting the ceiling at all
    // means the deployment should raise max_tracked_ips.
    auto stalest = buckets_.begin();
    for (auto b = buckets_.begin(); b != buckets_.end(); ++b) {
      if (b->second.refilled_at < stalest->second.refilled_at) stalest = b;
    }
    buckets_.erase(stalest);
  }
  return buckets_.emplace(ip.value(), Bucket{config_.burst, clock_->now()})
      .first->second;
}

void RateLimiter::refill(Bucket& b) {
  const common::TimePoint now = clock_->now();
  const double elapsed_s =
      std::chrono::duration<double>(now - b.refilled_at).count();
  if (elapsed_s > 0.0) {
    b.tokens = std::min(config_.burst,
                        b.tokens + elapsed_s * config_.tokens_per_second);
    b.refilled_at = now;
  }
}

bool RateLimiter::allow(features::IpAddress ip) {
  Bucket& b = bucket_for(ip);
  refill(b);
  if (b.tokens < 1.0) return false;
  b.tokens -= 1.0;
  return true;
}

double RateLimiter::tokens(features::IpAddress ip) {
  Bucket& b = bucket_for(ip);
  refill(b);
  return b.tokens;
}

}  // namespace powai::framework
