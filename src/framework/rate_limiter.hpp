#pragma once
/// \file rate_limiter.hpp
/// Per-IP token-bucket rate limiter. The PoW layer makes requests costly
/// but a server still wants a hard ceiling on challenge issuance per
/// source (otherwise an attacker can make the *issuer* the hotspot).
///
/// Two bucket representations, chosen once per limiter by the configured
/// burst:
///
/// - **Packed word** (burst <= kMaxBurst): each bucket is one atomic
///   64-bit word packing (tokens as 16.16 fixed point, last-refill in
///   truncated ms), and allow() refills + consumes with a CAS loop — no
///   exclusive lock is ever taken for an existing bucket.
/// - **Wide** (burst > kMaxBurst, up to kMaxWideBurst): the bucket state
///   widens to (tokens as 48.16 fixed point, last-refill in full 64-bit
///   ms). Where the platform provides a 128-bit compare-exchange the
///   wide word is CAS'ed exactly like the packed one; otherwise each
///   bucket carries its own lock (taken only for that one IP's state, so
///   distinct IPs still never contend). ThreadSanitizer builds always
///   use the per-bucket lock so every access stays instrumented.
///
/// Per-key accounting stays exact under concurrent callers in both
/// representations: N threads racing one IP each retire one CAS (or one
/// lock hand-off), and exactly floor(balance) of them win a token. The
/// shard's shared_mutex is held *shared* on the existing-bucket path
/// (readers never contend); the exclusive side exists only for the cold
/// path — bucket creation and eviction — so the map cannot mutate under
/// a racing consume.
///
/// Precision notes: time is quantized to milliseconds and tokens to
/// 1/65536. Refill credit for sub-millisecond elapses within one
/// millisecond quantum is deferred to the next quantum, never lost
/// beyond it. Bursts beyond kMaxWideBurst are rejected at construction
/// (std::invalid_argument) — the limiter never silently truncates a
/// configured burst to what its word can represent.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "common/clock.hpp"
#include "features/ip_address.hpp"

// Wide-bucket representation selection. POWAI_HAVE_ATOMIC128 comes from
// the build system (a compile+link probe of __atomic_compare_exchange_n
// on unsigned __int128); sanitizer builds force the per-bucket-lock
// fallback so TSan instruments every access instead of trusting
// uninstrumented libatomic internals.
#if defined(__SANITIZE_THREAD__)
#define POWAI_RL_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define POWAI_RL_TSAN 1
#endif
#endif

#if defined(POWAI_HAVE_ATOMIC128) && defined(__SIZEOF_INT128__) && \
    !defined(POWAI_RL_TSAN)
#define POWAI_RATE_LIMITER_CAS128 1
#endif

namespace powai::framework {

struct RateLimiterConfig final {
  double tokens_per_second = 10.0;  ///< refill rate per IP

  /// Bucket capacity. Values <= RateLimiter::kMaxBurst ride the packed
  /// 64-bit fast path; larger values (up to kMaxWideBurst) select the
  /// wide representation. Anything beyond kMaxWideBurst (or non-finite)
  /// is rejected at construction — never truncated.
  double burst = 20.0;

  /// Global tracked-bucket budget, distributed exactly across shards.
  std::size_t max_tracked_ips = 1 << 20;

  /// Lock stripes (rounded up to a power of two, then halved until
  /// every shard keeps a healthy bucket budget — a starved shard would
  /// thrash-evict colliding IPs back to full burst while the global
  /// budget is nowhere near spent). Small `max_tracked_ips` therefore
  /// collapse to a single lock; striping only kicks in at budgets that
  /// can actually feed the shards.
  std::size_t shards = 8;
};

class RateLimiter final {
 public:
  /// Largest bucket capacity the packed-word fast path represents
  /// (16.16 fixed point).
  static constexpr double kMaxBurst = 65535.0;

  /// Largest bucket capacity the wide representation represents (48.16
  /// fixed point, kept comfortably inside what std::llround can produce).
  static constexpr double kMaxWideBurst =
      static_cast<double>(std::uint64_t{1} << 46);

  /// \p clock must outlive the limiter.
  RateLimiter(const common::Clock& clock, RateLimiterConfig config = {});

  RateLimiter(const RateLimiter&) = delete;
  RateLimiter& operator=(const RateLimiter&) = delete;

  /// Consumes one token for \p ip if available; false = rate limited.
  /// Thread-safe; lock-free (CAS) for already-tracked IPs on the packed
  /// path, per-bucket synchronization on the wide path.
  [[nodiscard]] bool allow(features::IpAddress ip);

  /// Current token balance as of now (diagnostics). Strictly read-only:
  /// never creates or evicts a bucket, so probing an IP cannot perturb
  /// live accounting. Untracked IPs report the full burst they would
  /// start with. Thread-safe.
  [[nodiscard]] double tokens(features::IpAddress ip) const;

  /// Total tracked buckets, summed over shards. Exact when quiescent.
  [[nodiscard]] std::size_t tracked_ips() const;

  /// Approximate resident footprint of the tracked-bucket state, in
  /// bytes (hash-table slots + per-entry nodes). Diagnostic — feeds the
  /// load benches' bytes/client accounting. Thread-safe.
  [[nodiscard]] std::size_t memory_bytes() const;

  /// True when the burst selected the wide representation.
  [[nodiscard]] bool wide() const { return wide_; }

  [[nodiscard]] std::size_t shard_count() const {
    return static_cast<std::size_t>(shard_mask_) + 1;
  }

 private:
  /// Packed-path bucket: state in one CAS-able word:
  /// bits 63..32 — tokens in 1/65536 units; bits 31..0 — last-refill
  /// time in truncated milliseconds (wraps every ~49 days; elapsed time
  /// is the modular difference read as signed — correct across a single
  /// wrap, and a negative delta from a racing thread's older `now`
  /// clamps to zero instead of refilling the bucket).
  struct Bucket {
    std::atomic<std::uint64_t> packed{0};
  };

  /// Wide-path bucket: tokens in 1/65536 units (high 64 bits, 48.16) and
  /// last-refill in full 64-bit milliseconds (low 64 bits). CAS'ed as one
  /// 128-bit word where the platform provides it; otherwise the bucket's
  /// own mutex guards a plain (tokens, ms) pair.
  struct WideBucket {
#if defined(POWAI_RATE_LIMITER_CAS128)
    alignas(16) unsigned __int128 word{0};
#else
    mutable std::mutex mu;
    std::uint64_t tokens_fp = 0;  ///< tokens in 1/65536 units
    std::uint64_t last_ms = 0;
#endif
  };

  struct Shard {
    mutable std::shared_mutex mu;  ///< shared: consume path; exclusive: create/evict
    std::unordered_map<std::uint32_t, Bucket> buckets;
    std::unordered_map<std::uint32_t, WideBucket> wide_buckets;
    std::size_t max_ips = 0;  ///< this shard's slice of max_tracked_ips
    std::size_t hand = 0;     ///< clock-hand cursor for eviction
  };

  [[nodiscard]] Shard& shard_for(features::IpAddress ip) const;

  /// Finds or creates the bucket (caller holds s.mu exclusively).
  Bucket& bucket_for(Shard& s, features::IpAddress ip, std::uint32_t now_ms);
  WideBucket& wide_bucket_for(Shard& s, features::IpAddress ip,
                              std::uint64_t now_ms);

  /// Drops one stale-ish bucket — the candidate with the largest age
  /// relative to \p now_ms — amortized O(1) (caller holds s.mu
  /// exclusively and guarantees the shard is non-empty).
  void evict_one(Shard& s, std::uint64_t now_ms);

  /// Refill-and-consume (caller holds s.mu at least shared).
  bool consume(Bucket& b, std::uint32_t now_ms);
  bool consume_wide(WideBucket& b, std::uint64_t now_ms);

  /// The balance the packed state \p word represents at \p now_ms.
  [[nodiscard]] double refreshed_tokens(std::uint64_t word,
                                        std::uint32_t now_ms) const;
  [[nodiscard]] double refreshed_tokens_wide(std::uint64_t tokens_fp,
                                             std::uint64_t last_ms,
                                             std::uint64_t now_ms) const;

  [[nodiscard]] std::uint64_t now_ms64() const;

  const common::Clock* clock_;
  RateLimiterConfig config_;
  bool wide_ = false;
  std::uint32_t shard_mask_ = 0;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace powai::framework
