#pragma once
/// \file rate_limiter.hpp
/// Per-IP token-bucket rate limiter. The PoW layer makes requests costly
/// but a server still wants a hard ceiling on challenge issuance per
/// source (otherwise an attacker can make the *issuer* the hotspot).
///
/// Mutex-striped like ShardedReplayCache/ShardedReputationCache: the
/// bucket for one IP always lives in one shard, so per-key token
/// accounting stays exact under concurrent callers — N threads racing
/// allow() on one IP serialize on its shard lock and exactly
/// floor(balance) of them win.

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/clock.hpp"
#include "features/ip_address.hpp"

namespace powai::framework {

struct RateLimiterConfig final {
  double tokens_per_second = 10.0;  ///< refill rate per IP
  double burst = 20.0;              ///< bucket capacity

  /// Global tracked-bucket budget, distributed exactly across shards.
  std::size_t max_tracked_ips = 1 << 20;

  /// Lock stripes (rounded up to a power of two, then halved until
  /// every shard keeps a healthy bucket budget — a starved shard would
  /// thrash-evict colliding IPs back to full burst while the global
  /// budget is nowhere near spent). Small `max_tracked_ips` therefore
  /// collapse to a single lock; striping only kicks in at budgets that
  /// can actually feed the shards.
  std::size_t shards = 8;
};

class RateLimiter final {
 public:
  /// \p clock must outlive the limiter.
  RateLimiter(const common::Clock& clock, RateLimiterConfig config = {});

  RateLimiter(const RateLimiter&) = delete;
  RateLimiter& operator=(const RateLimiter&) = delete;

  /// Consumes one token for \p ip if available; false = rate limited.
  /// Thread-safe.
  [[nodiscard]] bool allow(features::IpAddress ip);

  /// Current token balance as of now (diagnostics). Strictly read-only:
  /// never creates or evicts a bucket, so probing an IP cannot perturb
  /// live accounting. Untracked IPs report the full burst they would
  /// start with. Thread-safe.
  [[nodiscard]] double tokens(features::IpAddress ip) const;

  /// Total tracked buckets, summed over shards. Exact when quiescent.
  [[nodiscard]] std::size_t tracked_ips() const;

  [[nodiscard]] std::size_t shard_count() const {
    return static_cast<std::size_t>(shard_mask_) + 1;
  }

 private:
  struct Bucket {
    double tokens;
    common::TimePoint refilled_at;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::uint32_t, Bucket> buckets;
    std::size_t max_ips = 0;  ///< this shard's slice of max_tracked_ips
    std::size_t hand = 0;     ///< clock-hand cursor for eviction
  };

  [[nodiscard]] Shard& shard_for(features::IpAddress ip) const;

  /// Finds or creates the bucket (caller holds s.mu).
  Bucket& bucket_for(Shard& s, features::IpAddress ip);

  /// Drops one stale-ish bucket, amortized O(1) (caller holds s.mu and
  /// guarantees the shard is non-empty).
  void evict_one(Shard& s);

  void refill(Bucket& b) const;

  const common::Clock* clock_;
  RateLimiterConfig config_;
  std::uint32_t shard_mask_ = 0;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace powai::framework
