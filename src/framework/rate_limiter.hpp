#pragma once
/// \file rate_limiter.hpp
/// Per-IP token-bucket rate limiter. The PoW layer makes requests costly
/// but a server still wants a hard ceiling on challenge issuance per
/// source (otherwise an attacker can make the *issuer* the hotspot).
///
/// Fast path: each bucket is one atomic 64-bit word packing
/// (tokens as 16.16 fixed point, last-refill in truncated ms), and
/// allow() refills + consumes with a CAS loop — no exclusive lock is
/// ever taken for an existing bucket. Per-key accounting stays exact
/// under concurrent callers: N threads racing one IP each retire one
/// CAS, and exactly floor(balance) of them win a token. The shard's
/// shared_mutex is held *shared* on this path (readers never contend);
/// the exclusive side exists only for the cold path — bucket creation
/// and eviction — so the map cannot mutate under a racing CAS.
///
/// Precision notes: time is quantized to milliseconds and tokens to
/// 1/65536, so burst is capped (kMaxBurst) and refill credit for
/// sub-millisecond elapses within one millisecond quantum is deferred
/// to the next quantum, never lost beyond it.

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>

#include "common/clock.hpp"
#include "features/ip_address.hpp"

namespace powai::framework {

struct RateLimiterConfig final {
  double tokens_per_second = 10.0;  ///< refill rate per IP
  double burst = 20.0;              ///< bucket capacity (<= kMaxBurst)

  /// Global tracked-bucket budget, distributed exactly across shards.
  std::size_t max_tracked_ips = 1 << 20;

  /// Lock stripes (rounded up to a power of two, then halved until
  /// every shard keeps a healthy bucket budget — a starved shard would
  /// thrash-evict colliding IPs back to full burst while the global
  /// budget is nowhere near spent). Small `max_tracked_ips` therefore
  /// collapse to a single lock; striping only kicks in at budgets that
  /// can actually feed the shards.
  std::size_t shards = 8;
};

class RateLimiter final {
 public:
  /// Largest representable bucket capacity (16.16 fixed point).
  static constexpr double kMaxBurst = 65535.0;

  /// \p clock must outlive the limiter.
  RateLimiter(const common::Clock& clock, RateLimiterConfig config = {});

  RateLimiter(const RateLimiter&) = delete;
  RateLimiter& operator=(const RateLimiter&) = delete;

  /// Consumes one token for \p ip if available; false = rate limited.
  /// Thread-safe; lock-free (CAS) for already-tracked IPs.
  [[nodiscard]] bool allow(features::IpAddress ip);

  /// Current token balance as of now (diagnostics). Strictly read-only:
  /// never creates or evicts a bucket, so probing an IP cannot perturb
  /// live accounting. Untracked IPs report the full burst they would
  /// start with. Thread-safe.
  [[nodiscard]] double tokens(features::IpAddress ip) const;

  /// Total tracked buckets, summed over shards. Exact when quiescent.
  [[nodiscard]] std::size_t tracked_ips() const;

  [[nodiscard]] std::size_t shard_count() const {
    return static_cast<std::size_t>(shard_mask_) + 1;
  }

 private:
  /// Bucket state packed into one CAS-able word:
  /// bits 63..32 — tokens in 1/65536 units; bits 31..0 — last-refill
  /// time in truncated milliseconds (wraps every ~49 days; elapsed time
  /// is the modular difference read as signed — correct across a single
  /// wrap, and a negative delta from a racing thread's older `now`
  /// clamps to zero instead of refilling the bucket).
  struct Bucket {
    std::atomic<std::uint64_t> packed{0};
  };

  struct Shard {
    mutable std::shared_mutex mu;  ///< shared: CAS path; exclusive: create/evict
    std::unordered_map<std::uint32_t, Bucket> buckets;
    std::size_t max_ips = 0;  ///< this shard's slice of max_tracked_ips
    std::size_t hand = 0;     ///< clock-hand cursor for eviction
  };

  [[nodiscard]] Shard& shard_for(features::IpAddress ip) const;

  /// Finds or creates the bucket (caller holds s.mu exclusively).
  Bucket& bucket_for(Shard& s, features::IpAddress ip, std::uint32_t now_ms);

  /// Drops one stale-ish bucket — the candidate with the largest
  /// modular age relative to \p now_ms — amortized O(1) (caller holds
  /// s.mu exclusively and guarantees the shard is non-empty).
  void evict_one(Shard& s, std::uint32_t now_ms);

  /// Refill-and-consume CAS loop (caller holds s.mu at least shared).
  bool consume(Bucket& b, std::uint32_t now_ms);

  /// The balance the packed state \p word represents at \p now_ms.
  [[nodiscard]] double refreshed_tokens(std::uint64_t word,
                                        std::uint32_t now_ms) const;

  [[nodiscard]] std::uint32_t now_ms32() const;

  const common::Clock* clock_;
  RateLimiterConfig config_;
  std::uint32_t shard_mask_ = 0;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace powai::framework
