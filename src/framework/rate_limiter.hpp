#pragma once
/// \file rate_limiter.hpp
/// Per-IP token-bucket rate limiter. The PoW layer makes requests costly
/// but a server still wants a hard ceiling on challenge issuance per
/// source (otherwise an attacker can make the *issuer* the hotspot).

#include <cstdint>
#include <unordered_map>

#include "common/clock.hpp"
#include "features/ip_address.hpp"

namespace powai::framework {

struct RateLimiterConfig final {
  double tokens_per_second = 10.0;  ///< refill rate per IP
  double burst = 20.0;              ///< bucket capacity
  std::size_t max_tracked_ips = 1 << 20;
};

class RateLimiter final {
 public:
  /// \p clock must outlive the limiter.
  RateLimiter(const common::Clock& clock, RateLimiterConfig config = {});

  /// Consumes one token for \p ip if available; false = rate limited.
  [[nodiscard]] bool allow(features::IpAddress ip);

  /// Current token balance (diagnostics; refreshed to now).
  [[nodiscard]] double tokens(features::IpAddress ip);

  [[nodiscard]] std::size_t tracked_ips() const { return buckets_.size(); }

 private:
  struct Bucket {
    double tokens;
    common::TimePoint refilled_at;
  };

  Bucket& bucket_for(features::IpAddress ip);
  void refill(Bucket& b);

  const common::Clock* clock_;
  RateLimiterConfig config_;
  std::unordered_map<std::uint32_t, Bucket> buckets_;
};

}  // namespace powai::framework
