#pragma once
/// \file async_front_end.hpp
/// The asynchronous transport front end: decouples wire-message arrival
/// from server execution so the batch entry points PR 2 built
/// (on_request_batch / on_submission_batch) are reachable from the wire.
///
/// Data flow (see docs/ARCHITECTURE.md for the full diagram):
///
///   netsim::EventLoop (loop thread)
///     └─ ServerEndpoint::on_message — decode, enqueue → RequestQueue
///          └─ drain thread: pop up to max_batch (whatever is pending —
///             adaptive batch sizing), fan out on the server's pool via
///             on_request_batch / on_submission_batch
///               └─ EventLoop::post(completions) — responses are sent
///                  on the loop thread, at the simulated instant the
///                  batch was accepted
///
/// Determinism contract: run_until_idle() never advances simulated time
/// while the front end owes responses, so a run produces exactly the
/// totals of the synchronous in-process shim (same requests issued /
/// verified / rejected) — the property tests/test_async_front_end.cpp
/// pins. Backpressure is explicit: when the queue is full the endpoint
/// answers kUnavailable immediately and the refusal lands in
/// ServerStats::rejected_overload, so a flooding adversary meets a
/// defined ceiling instead of unbounded buffering.
///
/// Lifetime: the loop, network, queue owner (this class), and server
/// must all outlive any pending simulated events; destroy the front end
/// before the loop/network/server it references.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "framework/request_queue.hpp"
#include "framework/server.hpp"
#include "netsim/event_loop.hpp"
#include "netsim/network.hpp"

namespace powai::framework {

/// Front-end knobs. All of them trade throughput against latency or
/// memory, never against correctness — totals are exact at any setting.
struct AsyncFrontEndConfig final {
  /// RequestQueue bound: decoded messages buffered ahead of the server.
  /// The backpressure point — senders beyond it get kUnavailable.
  std::size_t queue_capacity = 1024;

  /// Ceiling on one dispatched batch. The drain pops whatever is
  /// pending up to this, so batches adapt to load: 1 under trickle
  /// traffic, max_batch under burst.
  std::size_t max_batch = 64;

  /// When true the drain thread waits until start() (or the first
  /// run_until_idle()) — lets tests and staged harnesses build a
  /// deterministic backlog first.
  bool start_paused = false;
};

/// Counters describing how the drain actually batched (diagnostics; one
/// writer — the drain thread — so a snapshot is consistent when idle).
struct FrontEndStats final {
  std::uint64_t batches = 0;      ///< dispatches to the server
  std::uint64_t messages = 0;     ///< wire messages across all batches
  std::uint64_t requests = 0;     ///< of which Request
  std::uint64_t submissions = 0;  ///< of which Submission
  std::size_t largest_batch = 0;  ///< adaptive-batching high-water mark
};

class AsyncFrontEnd final {
 public:
  /// Creates the queue (config.queue_capacity) and the drain thread.
  /// \p loop, \p network, and \p server must outlive the front end;
  /// \p host_name is the endpoint's registered host (responses are sent
  /// from it). Wire a ServerEndpoint to queue() to complete the path.
  AsyncFrontEnd(netsim::EventLoop& loop, netsim::Network& network,
                std::string host_name, PowServer& server,
                AsyncFrontEndConfig config = {});

  /// Closes the queue and joins the drain thread. Completions already
  /// posted but not yet executed stay scheduled on the loop.
  ~AsyncFrontEnd();

  AsyncFrontEnd(const AsyncFrontEnd&) = delete;
  AsyncFrontEnd& operator=(const AsyncFrontEnd&) = delete;

  /// The queue transports enqueue into (pass to ServerEndpoint).
  [[nodiscard]] RequestQueue& queue() { return queue_; }

  /// Releases a paused drain thread. Idempotent; run_until_idle() calls
  /// it implicitly.
  void start();

  /// The pump: runs the owning loop until the wire, the queue, and all
  /// in-flight batches are drained, then returns the number of events
  /// executed. Simulated time advances only between settled instants —
  /// while a batch is in flight the clock is frozen at the instant its
  /// messages arrived, which is what keeps async totals identical to a
  /// synchronous run. Call from the loop thread; do not mix with a
  /// concurrent plain loop.run().
  std::size_t run_until_idle();

  /// True when the front end owes no responses (queue empty, nothing in
  /// flight). Thread-safe.
  [[nodiscard]] bool idle() const { return !queue_.busy(); }

  /// Snapshot of the batching counters. Exact when idle(). Thread-safe.
  [[nodiscard]] FrontEndStats stats() const;

  [[nodiscard]] const AsyncFrontEndConfig& config() const { return config_; }

 private:
  void drain_loop();
  void process_batch(std::vector<WireMessage>&& batch);

  netsim::EventLoop* loop_;
  netsim::Network* network_;
  std::string host_name_;
  PowServer* server_;
  AsyncFrontEndConfig config_;
  RequestQueue queue_;

  mutable std::mutex mu_;  ///< guards started_/stats_ + pump/drain cv
  std::condition_variable cv_;
  bool started_;
  FrontEndStats stats_;

  std::thread drain_;  // last member: joins before the rest unwinds
};

}  // namespace powai::framework
