#pragma once
/// \file async_front_end.hpp
/// The asynchronous transport front end: decouples wire-message arrival
/// from server execution so the batch entry points PR 2 built
/// (on_request_batch / on_submission_batch) are reachable from the wire.
///
/// Data flow (see docs/ARCHITECTURE.md for the full diagram):
///
///   netsim::EventLoop (loop thread)
///     └─ ServerEndpoint::on_message — decode, route by source IP into
///        one of `drain_shards` RequestQueues (AsyncFrontEnd::try_push)
///          └─ per-shard drain thread: pop up to max_batch (whatever is
///             pending — adaptive batch sizing), fan out on the server's
///             pool via on_request_batch / on_submission_batch
///               └─ EventLoop::post(completions) — responses are sent
///                  on the loop thread, at the simulated instant the
///                  batch was accepted
///
/// Sharding: the queue is partitioned by transport-level source address
/// with one drain thread per shard. A client's messages always land in
/// the same shard and are popped in arrival order (per-client FIFO
/// preserved); different clients drain in parallel, so a single drainer
/// is no longer the serialization point under many cores + tiny
/// batches. Because issuance is order-independent (keyed per-id
/// derivation, see server.hpp), cross-shard interleaving cannot change
/// what any client receives — over a deterministic link (no jitter, no
/// loss) whole histories stay bit-identical at any drain_shards
/// setting. (A jittered/lossy link draws from one send-ordered wire
/// Rng, which racy cross-shard completion order can permute — that
/// caveat predates sharding and applies to any concurrent poster.)
///
/// Determinism contract: run_until_idle() never advances simulated time
/// while the front end owes responses, so a run produces exactly the
/// totals of the synchronous in-process shim (same requests issued /
/// verified / rejected) — the property tests/test_async_front_end.cpp
/// pins. Backpressure is explicit: when a shard's queue is full the
/// endpoint answers kUnavailable immediately and the refusal lands in
/// ServerStats::rejected_overload, so a flooding adversary meets a
/// defined ceiling instead of unbounded buffering. In-flight accounting
/// stays exact globally: every accepted message is counted in exactly
/// one shard until its batch completes, and idle() is the conjunction
/// over shards.
///
/// Lifetime: the loop, network, queue owner (this class), and server
/// must all outlive any pending simulated events; destroy the front end
/// before the loop/network/server it references.

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "framework/request_queue.hpp"
#include "framework/server.hpp"
#include "framework/watchdog.hpp"
#include "netsim/event_loop.hpp"
#include "netsim/network.hpp"

namespace powai::framework {

/// Front-end knobs. All of them trade throughput against latency or
/// memory, never against correctness — totals are exact at any setting.
struct AsyncFrontEndConfig final {
  /// Global bound on decoded messages buffered ahead of the server,
  /// split exactly across the drain shards (split_slice). The
  /// backpressure point — senders beyond a shard's slice get
  /// kUnavailable. Must be >= drain_shards so every shard can buffer.
  std::size_t queue_capacity = 1024;

  /// Ceiling on one dispatched batch. Each drain pops whatever is
  /// pending in its shard up to this, so batches adapt to load: 1 under
  /// trickle traffic, max_batch under burst.
  std::size_t max_batch = 64;

  /// Drain threads, each owning one queue partition keyed by source IP
  /// (0 is treated as 1). Per-client FIFO is preserved — a client's
  /// messages always hash to the same shard — while distinct clients
  /// drain in parallel.
  std::size_t drain_shards = 1;

  /// When true the drain threads wait until start() (or the first
  /// run_until_idle()) — lets tests and staged harnesses build a
  /// deterministic backlog first.
  bool start_paused = false;

  /// Pin drain thread s to CPU s mod hardware_concurrency (Linux only;
  /// a silent no-op elsewhere). Affinity plus source-keyed sharding
  /// keeps a client's messages on one warm core. Purely a performance
  /// knob: totals and histories are identical either way. Default off.
  bool pin_drains = false;

  /// Arm a stall watchdog over the drain threads: busy (non-empty
  /// queues) without any drain making progress for longer than this
  /// flags a stall (see watchdog.hpp). Zero = off. Wall-clock
  /// diagnostics only — totals and histories never depend on it.
  common::Duration watchdog_stall{0};

  /// Watchdog sampling period (only read when watchdog_stall > 0).
  common::Duration watchdog_poll = std::chrono::milliseconds(20);
};

/// Fault-injection hooks for the deterministic campaign layer
/// (sim::CampaignRunner). Every hook runs on a drain thread and may only
/// consume *wall-clock* time (sleep, spin) — the determinism contract
/// means a stalled drain changes batching shape and wall latency but
/// never totals, which is exactly the invariant stall campaigns check.
struct FrontEndFaultHooks final {
  /// Invoked before dispatching a batch: (shard, per-shard batch index).
  /// Install before start() / the first run_until_idle().
  std::function<void(std::size_t shard, std::uint64_t batch_index)>
      before_batch;

  /// Invoked before a batch's submissions hit the verifier:
  /// (shard, submissions in the batch). The slow-verify fault seam —
  /// same wall-clock-only contract as before_batch.
  std::function<void(std::size_t shard, std::size_t submissions)>
      before_verify;
};

/// Log-bucketed wall-clock queue-sojourn histogram (bench reporting).
/// Bucket i >= 1 counts sojourns in [2^(i-1), 2^i) microseconds;
/// bucket 0 holds sub-microsecond pops. Percentiles reconstruct from
/// the geometric mid of the bucket — plenty for p50/p99 tracking.
/// Wall-clock, hence nondeterministic: never part of a fingerprint.
struct SojournHistogram final {
  static constexpr std::size_t kBuckets = 40;
  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  double sum_ms = 0.0;

  void record_ms(double ms);

  /// \p p in [0, 1]; 0.5 = median. Zero when empty.
  [[nodiscard]] double percentile_ms(double p) const;
  [[nodiscard]] double mean_ms() const {
    return count > 0 ? sum_ms / static_cast<double>(count) : 0.0;
  }
};

/// Counters describing how the drains actually batched (diagnostics;
/// written by drain threads under one lock — a snapshot is consistent
/// when idle).
struct FrontEndStats final {
  std::uint64_t batches = 0;      ///< dispatches to the server
  std::uint64_t messages = 0;     ///< wire messages across all batches
  std::uint64_t requests = 0;     ///< of which Request reached the server
  std::uint64_t submissions = 0;  ///< of which Submission reached the server
  /// Of messages, how many were dropped at pop time because their
  /// deadline had passed (answered kUnavailable without server work;
  /// also on the server ledger as shed_queue_*).
  std::uint64_t expired_dropped = 0;
  std::size_t largest_batch = 0;  ///< adaptive-batching high-water mark
  SojournHistogram sojourn;       ///< wall-clock queue-wait distribution
};

class AsyncFrontEnd final {
 public:
  /// Creates the shard queues (config.queue_capacity split across
  /// config.drain_shards) and one drain thread per shard. \p loop,
  /// \p network, and \p server must outlive the front end; \p host_name
  /// is the endpoint's registered host (responses are sent from it).
  /// Wire a ServerEndpoint to this front end to complete the path.
  /// Throws std::invalid_argument when queue_capacity < drain_shards.
  AsyncFrontEnd(netsim::EventLoop& loop, netsim::Network& network,
                std::string host_name, PowServer& server,
                AsyncFrontEndConfig config = {});

  /// Closes the queues and joins the drain threads. Completions already
  /// posted but not yet executed stay scheduled on the loop.
  ~AsyncFrontEnd();

  AsyncFrontEnd(const AsyncFrontEnd&) = delete;
  AsyncFrontEnd& operator=(const AsyncFrontEnd&) = delete;

  /// Routes \p message into its source's shard queue. False = that
  /// shard is at capacity (or the front end is shutting down) and the
  /// caller must answer the sender itself (overload NAK). Thread-safe;
  /// never blocks.
  [[nodiscard]] bool try_push(WireMessage message);

  /// Releases paused drain threads. Idempotent; run_until_idle() calls
  /// it implicitly.
  void start();

  /// The pump: runs the owning loop until the wire, every shard queue,
  /// and all in-flight batches are drained, then returns the number of
  /// events executed. Simulated time advances only between settled
  /// instants — while any batch is in flight the clock is frozen at the
  /// instant its messages arrived, which is what keeps async totals
  /// identical to a synchronous run. Call from the loop thread; do not
  /// mix with a concurrent plain loop.run().
  std::size_t run_until_idle();

  /// True when the front end owes no responses (every shard queue
  /// empty, nothing in flight). Thread-safe.
  [[nodiscard]] bool idle() const;

  /// Messages queued (accepted, not yet popped), summed over shards.
  /// Thread-safe.
  [[nodiscard]] std::size_t queued() const;

  /// Messages popped but not yet completed, summed over shards.
  /// Thread-safe.
  [[nodiscard]] std::size_t in_flight() const;

  /// try_push calls refused at capacity, summed over shards.
  /// Thread-safe.
  [[nodiscard]] std::uint64_t overflows() const;

  /// Messages accepted so far, summed over shards. Thread-safe.
  [[nodiscard]] std::uint64_t accepted() const;

  /// Messages fully processed (batch completed), summed over shards.
  /// Thread-safe. When idle(), accepted() == completed() exactly — the
  /// front-end side of the conservation invariant campaigns check.
  [[nodiscard]] std::uint64_t completed() const;

  /// Installs fault hooks (campaign stall injection). Call before the
  /// drains start working — with start_paused, before start(); otherwise
  /// before the first message is pushed.
  void set_fault_hooks(FrontEndFaultHooks hooks);

  /// Actual number of drain shards (>= 1).
  [[nodiscard]] std::size_t shard_count() const { return queues_.size(); }

  /// Snapshot of the batching counters. Exact when idle(). Thread-safe.
  [[nodiscard]] FrontEndStats stats() const;

  /// Watchdog snapshot (all zeros when watchdog_stall is 0).
  /// Thread-safe.
  [[nodiscard]] WatchdogStats watchdog_stats() const;

  [[nodiscard]] const AsyncFrontEndConfig& config() const { return config_; }

 private:
  void drain_loop(std::size_t shard);
  void process_batch(RequestQueue& queue, std::vector<WireMessage>&& batch,
                     std::size_t shard);

  /// Shard index for a transport-level source address (stable across
  /// runs and platforms, so batching diagnostics are reproducible).
  [[nodiscard]] std::size_t shard_for(const std::string& from) const;

  netsim::EventLoop* loop_;
  netsim::Network* network_;
  std::string host_name_;
  PowServer* server_;
  AsyncFrontEndConfig config_;
  std::vector<std::unique_ptr<RequestQueue>> queues_;  ///< one per shard

  mutable std::mutex mu_;  ///< guards started_/stats_/hooks_ + pump/drain cv
  std::condition_variable cv_;
  bool started_;
  FrontEndStats stats_;
  FrontEndFaultHooks hooks_;

  /// Armed when config_.watchdog_stall > 0 (one source per drain
  /// shard, busy probe = !idle()). Stopped before the queues close.
  std::unique_ptr<Watchdog> watchdog_;

  std::vector<std::thread> drains_;  // last member: joins before the rest
};

}  // namespace powai::framework
