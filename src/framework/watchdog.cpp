#include "framework/watchdog.hpp"

#include <stdexcept>

namespace powai::framework {

Watchdog::Watchdog(WatchdogConfig config) : config_(config) {
  if (config_.stall_after <= common::Duration::zero() ||
      config_.poll_every <= common::Duration::zero()) {
    throw std::invalid_argument("Watchdog: non-positive duration");
  }
}

Watchdog::~Watchdog() { stop(); }

std::size_t Watchdog::register_source(std::string name) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (running_) {
    throw std::logic_error("Watchdog: register_source after start");
  }
  sources_.push_back(std::make_unique<Source>());
  sources_.back()->name = std::move(name);
  return sources_.size() - 1;
}

void Watchdog::beat(std::size_t source) {
  sources_.at(source)->beats.fetch_add(1, std::memory_order_relaxed);
}

void Watchdog::set_busy_probe(std::function<bool()> probe) {
  const std::lock_guard<std::mutex> lock(mu_);
  busy_ = std::move(probe);
}

void Watchdog::start() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  running_ = true;
  stopping_ = false;
  last_progress_ = std::chrono::steady_clock::now();
  monitor_ = std::thread([this] { monitor_loop(); });
}

void Watchdog::stop() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  monitor_.join();
  const std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

void Watchdog::monitor_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    cv_.wait_for(lock, config_.poll_every, [this] { return stopping_; });
    if (stopping_) break;
    evaluate(std::chrono::steady_clock::now());
  }
}

void Watchdog::poll_once() {
  const std::lock_guard<std::mutex> lock(mu_);
  evaluate(std::chrono::steady_clock::now());
}

void Watchdog::evaluate(std::chrono::steady_clock::time_point now) {
  // Caller holds mu_.
  ++polls_;
  bool progressed = false;
  for (const auto& source : sources_) {
    const std::uint64_t beats =
        source->beats.load(std::memory_order_relaxed);
    if (beats != source->last_seen) {
      source->last_seen = beats;
      progressed = true;
    }
  }
  const bool busy = busy_ && busy_();
  if (progressed || !busy) {
    // Work is flowing, or there is nothing owed — either way, no stall.
    last_progress_ = now;
    stalled_now_ = false;
    return;
  }
  if (now - last_progress_ >= config_.stall_after && !stalled_now_) {
    stalled_now_ = true;
    ++stalls_;
  }
}

WatchdogStats Watchdog::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  WatchdogStats s;
  s.stalls = stalls_;
  s.polls = polls_;
  s.stalled_now = stalled_now_;
  for (const auto& source : sources_) {
    s.heartbeats += source->beats.load(std::memory_order_relaxed);
  }
  return s;
}

}  // namespace powai::framework
