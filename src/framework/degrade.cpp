#include "framework/degrade.hpp"

#include <algorithm>
#include <stdexcept>

namespace powai::framework {

namespace {
constexpr auto kRelaxed = std::memory_order_relaxed;

// Gaps longer than this many windows fast-forward to a fully calm
// state instead of folding window by window. Purely a bound on fold
// work; the outcome (level 0, drained EWMAs) is what the per-window
// loop converges to long before this anyway, and the shortcut depends
// only on the gap length, so determinism is preserved.
constexpr std::int64_t kMaxFoldWindows = 100000;
}  // namespace

DegradeLadder::DegradeLadder(DegradeLadderConfig config)
    : config_(config) {
  if (config_.window <= common::Duration::zero()) {
    throw std::invalid_argument("DegradeLadder: non-positive window");
  }
  if (config_.ewma_alpha <= 0.0 || config_.ewma_alpha > 1.0) {
    throw std::invalid_argument("DegradeLadder: ewma_alpha outside (0, 1]");
  }
  window_ms_ = std::max<std::int64_t>(
      1, std::chrono::duration_cast<std::chrono::milliseconds>(config_.window)
             .count());
}

void DegradeLadder::fold_locked(std::int64_t epoch) {
  if (epoch - cur_epoch_ > kMaxFoldWindows) {
    sojourn_ewma_ms_ = 0.0;
    arrival_ewma_per_s_ = 0.0;
    pressure_ = 0.0;
    calm_count_ = 0;
    if (level_.load(kRelaxed) != 0) {
      level_.store(0, kRelaxed);
      ++transitions_;
    }
    cur_epoch_ = epoch;
    win_arrivals_ = 0;
    win_sojourn_sum_ms_ = 0.0;
    win_sojourn_count_ = 0;
    return;
  }
  while (cur_epoch_ < epoch) {
    // Window cur_epoch_ is complete: fold its totals.
    const double arrivals_per_s =
        static_cast<double>(win_arrivals_) * 1000.0 /
        static_cast<double>(window_ms_);
    const double sojourn_ms =
        win_sojourn_count_ > 0
            ? win_sojourn_sum_ms_ / static_cast<double>(win_sojourn_count_)
            : 0.0;
    const double a = config_.ewma_alpha;
    sojourn_ewma_ms_ = a * sojourn_ms + (1.0 - a) * sojourn_ewma_ms_;
    arrival_ewma_per_s_ = a * arrivals_per_s + (1.0 - a) * arrival_ewma_per_s_;

    double pressure = 0.0;
    if (config_.sojourn_ref_ms > 0.0) {
      pressure = std::max(pressure, sojourn_ewma_ms_ / config_.sojourn_ref_ms);
    }
    if (config_.arrival_ref_per_s > 0.0) {
      pressure =
          std::max(pressure, arrival_ewma_per_s_ / config_.arrival_ref_per_s);
    }
    pressure_ = pressure;

    const int level = level_.load(kRelaxed);
    int target = 0;
    if (pressure >= config_.up_l3) {
      target = 3;
    } else if (pressure >= config_.up_l2) {
      target = 2;
    } else if (pressure >= config_.up_l1) {
      target = 1;
    }
    if (target > level) {
      level_.store(target, kRelaxed);
      if (target > max_level_.load(kRelaxed)) max_level_.store(target, kRelaxed);
      calm_count_ = 0;
      ++transitions_;
    } else if (level > 0 && pressure < config_.calm_below) {
      if (++calm_count_ >= config_.calm_windows) {
        level_.store(level - 1, kRelaxed);
        calm_count_ = 0;
        ++transitions_;
      }
    } else {
      calm_count_ = 0;
    }

    win_arrivals_ = 0;
    win_sojourn_sum_ms_ = 0.0;
    win_sojourn_count_ = 0;
    ++cur_epoch_;
  }
}

void DegradeLadder::record_arrival(std::int64_t now_ms) {
  if (!config_.enabled) return;
  std::lock_guard lock(mu_);
  fold_locked(now_ms / window_ms_);
  ++win_arrivals_;
}

void DegradeLadder::record_sojourn(std::int64_t now_ms, double sojourn_ms) {
  if (!config_.enabled) return;
  std::lock_guard lock(mu_);
  fold_locked(now_ms / window_ms_);
  win_sojourn_sum_ms_ += sojourn_ms;
  ++win_sojourn_count_;
}

void DegradeLadder::poll(std::int64_t now_ms) {
  if (!config_.enabled) return;
  std::lock_guard lock(mu_);
  fold_locked(now_ms / window_ms_);
}

DegradeStats DegradeLadder::stats() const {
  std::lock_guard lock(mu_);
  DegradeStats s;
  s.level = level_.load(kRelaxed);
  s.max_level = max_level_.load(kRelaxed);
  s.transitions = transitions_;
  s.pressure = pressure_;
  return s;
}

std::uint32_t DegradeLadder::retry_after_ms() const {
  const int level = std::clamp(level_.load(kRelaxed), 0, 3);
  return config_.retry_after_base_ms << static_cast<unsigned>(level);
}

}  // namespace powai::framework
