#include "framework/protocol.hpp"

namespace powai::framework {

namespace {

void append_string(common::Bytes& out, const std::string& s) {
  common::append_u32be(out, static_cast<std::uint32_t>(s.size()));
  common::append(out, common::bytes_of(s));
}

std::optional<std::string> read_string(common::ByteReader& reader,
                                       std::uint32_t max_len) {
  const auto len = reader.read_u32be();
  if (!len || *len > max_len) return std::nullopt;
  const auto bytes = reader.read_bytes(*len);
  if (!bytes) return std::nullopt;
  return common::string_of(*bytes);
}

void append_features(common::Bytes& out, const features::FeatureVector& v) {
  for (std::size_t i = 0; i < features::kFeatureCount; ++i) {
    // Doubles travel as their IEEE-754 bit pattern, big-endian.
    std::uint64_t bits;
    const double value = v[i];
    static_assert(sizeof bits == sizeof value);
    __builtin_memcpy(&bits, &value, sizeof bits);
    common::append_u64be(out, bits);
  }
}

std::optional<features::FeatureVector> read_features(
    common::ByteReader& reader) {
  features::FeatureVector v;
  for (std::size_t i = 0; i < features::kFeatureCount; ++i) {
    const auto bits = reader.read_u64be();
    if (!bits) return std::nullopt;
    double value;
    const std::uint64_t raw = *bits;
    __builtin_memcpy(&value, &raw, sizeof value);
    v[i] = value;
  }
  return v;
}

void append_blob(common::Bytes& out, const common::Bytes& blob) {
  common::append_u32be(out, static_cast<std::uint32_t>(blob.size()));
  common::append(out, blob);
}

std::optional<common::Bytes> read_blob(common::ByteReader& reader,
                                       std::uint32_t max_len) {
  const auto len = reader.read_u32be();
  if (!len || *len > max_len) return std::nullopt;
  return reader.read_bytes(*len);
}

constexpr std::uint32_t kMaxStringLen = 4096;
constexpr std::uint32_t kMaxBlobLen = 64 * 1024;

}  // namespace

common::Bytes Request::serialize() const {
  common::Bytes out;
  out.push_back(static_cast<std::uint8_t>(MessageType::kRequest));
  common::append_u64be(out, request_id);
  append_string(out, client_ip);
  append_string(out, path);
  append_features(out, features);
  common::append_u64be(out, static_cast<std::uint64_t>(deadline_ms));
  return out;
}

common::Bytes Challenge::serialize() const {
  common::Bytes out;
  out.push_back(static_cast<std::uint8_t>(MessageType::kChallenge));
  common::append_u64be(out, request_id);
  append_blob(out, puzzle.serialize());
  return out;
}

common::Bytes Submission::serialize() const {
  common::Bytes out;
  out.push_back(static_cast<std::uint8_t>(MessageType::kSubmission));
  common::append_u64be(out, request_id);
  append_blob(out, puzzle.serialize());
  append_blob(out, solution.serialize());
  common::append_u64be(out, static_cast<std::uint64_t>(deadline_ms));
  return out;
}

common::Bytes Response::serialize() const {
  common::Bytes out;
  out.push_back(static_cast<std::uint8_t>(MessageType::kResponse));
  common::append_u64be(out, request_id);
  common::append_u16be(out, static_cast<std::uint16_t>(status));
  append_string(out, body);
  common::append_u32be(out, retry_after_ms);
  return out;
}

std::optional<MessageType> peek_type(common::BytesView wire) {
  if (wire.empty()) return std::nullopt;
  const std::uint8_t tag = wire[0];
  if (tag < 1 || tag > 4) return std::nullopt;
  return static_cast<MessageType>(tag);
}

std::optional<Message> decode(common::BytesView wire) {
  const auto type = peek_type(wire);
  if (!type) return std::nullopt;
  common::ByteReader reader(wire.subspan(1));

  switch (*type) {
    case MessageType::kRequest: {
      Request m;
      const auto id = reader.read_u64be();
      if (!id) return std::nullopt;
      m.request_id = *id;
      auto ip = read_string(reader, kMaxStringLen);
      if (!ip) return std::nullopt;
      m.client_ip = std::move(*ip);
      auto path = read_string(reader, kMaxStringLen);
      if (!path) return std::nullopt;
      m.path = std::move(*path);
      const auto feats = read_features(reader);
      if (!feats) return std::nullopt;
      m.features = *feats;
      const auto deadline = reader.read_u64be();
      if (!deadline || !reader.empty()) return std::nullopt;
      m.deadline_ms = static_cast<std::int64_t>(*deadline);
      return Message{std::move(m)};
    }
    case MessageType::kChallenge: {
      Challenge m;
      const auto id = reader.read_u64be();
      if (!id) return std::nullopt;
      m.request_id = *id;
      const auto blob = read_blob(reader, kMaxBlobLen);
      if (!blob || !reader.empty()) return std::nullopt;
      auto puzzle = pow::Puzzle::deserialize(*blob);
      if (!puzzle) return std::nullopt;
      m.puzzle = std::move(*puzzle);
      return Message{std::move(m)};
    }
    case MessageType::kSubmission: {
      Submission m;
      const auto id = reader.read_u64be();
      if (!id) return std::nullopt;
      m.request_id = *id;
      const auto puzzle_blob = read_blob(reader, kMaxBlobLen);
      if (!puzzle_blob) return std::nullopt;
      auto puzzle = pow::Puzzle::deserialize(*puzzle_blob);
      if (!puzzle) return std::nullopt;
      m.puzzle = std::move(*puzzle);
      const auto sol_blob = read_blob(reader, kMaxBlobLen);
      if (!sol_blob) return std::nullopt;
      const auto solution = pow::Solution::deserialize(*sol_blob);
      if (!solution) return std::nullopt;
      m.solution = *solution;
      const auto deadline = reader.read_u64be();
      if (!deadline || !reader.empty()) return std::nullopt;
      m.deadline_ms = static_cast<std::int64_t>(*deadline);
      return Message{std::move(m)};
    }
    case MessageType::kResponse: {
      Response m;
      const auto id = reader.read_u64be();
      if (!id) return std::nullopt;
      m.request_id = *id;
      const auto status = reader.read_u16be();
      if (!status || *status > 10) return std::nullopt;
      m.status = static_cast<common::ErrorCode>(*status);
      auto body = read_string(reader, kMaxStringLen);
      if (!body) return std::nullopt;
      m.body = std::move(*body);
      const auto retry_after = reader.read_u32be();
      if (!retry_after || !reader.empty()) return std::nullopt;
      m.retry_after_ms = *retry_after;
      return Message{std::move(m)};
    }
  }
  return std::nullopt;
}

}  // namespace powai::framework
