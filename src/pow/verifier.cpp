#include "pow/verifier.hpp"

#include <stdexcept>

#include "pow/generator.hpp"

namespace powai::pow {

Verifier::Verifier(const common::Clock& clock, common::BytesView master_secret,
                   VerifierConfig config)
    : clock_(&clock),
      mac_key_(PuzzleGenerator::derive_mac_key(master_secret)),
      config_(config),
      // Throws std::invalid_argument on replay_capacity == 0.
      redeemed_(config.replay_capacity, config.replay_shards) {
  if (config_.ttl <= common::Duration::zero()) {
    throw std::invalid_argument("Verifier: non-positive ttl");
  }
}

common::Status Verifier::check_id(const Puzzle& puzzle,
                                  const Solution& solution) {
  if (solution.puzzle_id != puzzle.puzzle_id) {
    return common::err(common::ErrorCode::kInvalidArgument,
                       "solution references a different puzzle");
  }
  return common::Status::success();
}

common::Status Verifier::precheck(const Puzzle& puzzle,
                                  const Solution& solution,
                                  const std::string& observed_ip,
                                  common::BytesView prefix) const {
  using common::ErrorCode;

  if (const common::Status id = check_id(puzzle, solution); !id.ok()) {
    return id;
  }

  // 1. Authenticity: the puzzle (id, seed, timestamp, difficulty, bind)
  //    must carry our MAC — otherwise a client could lower its own
  //    difficulty or reuse a stale seed. The caller's serialized prefix
  //    doubles as the MAC input (plus the trailing id), so this is the
  //    submission's only serialization.
  const crypto::Digest expected =
      PuzzleGenerator::compute_auth(mac_key_, prefix, puzzle.puzzle_id);
  if (!crypto::constant_time_equal(
          common::BytesView(expected.data(), expected.size()),
          common::BytesView(puzzle.auth.data(), puzzle.auth.size()))) {
    return common::err(ErrorCode::kInvalidArgument, "puzzle MAC mismatch");
  }

  // 2. Client binding (solutions are not transferable between IPs).
  if (!observed_ip.empty() && observed_ip != puzzle.client_binding) {
    return common::err(ErrorCode::kInvalidArgument,
                       "puzzle bound to a different client");
  }

  // 3. Expiry window.
  const std::int64_t now_ms = common::to_millis(clock_->now());
  const std::int64_t age_ms = now_ms - puzzle.issued_at_ms;
  const auto ttl_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(config_.ttl).count();
  const auto skew_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(config_.future_skew)
          .count();
  if (age_ms > ttl_ms) {
    return common::err(ErrorCode::kExpired, "puzzle ttl exceeded");
  }
  if (age_ms < -skew_ms) {
    return common::err(ErrorCode::kExpired, "puzzle issued in the future");
  }

  return common::Status::success();
}

common::Status Verifier::finalize(const Puzzle& puzzle,
                                  const crypto::Digest& digest) {
  using common::ErrorCode;

  // 4. The work itself.
  if (!crypto::meets_difficulty(digest, puzzle.difficulty)) {
    return common::err(ErrorCode::kBadSolution,
                       "digest does not meet difficulty");
  }

  // 5. Single redemption: the shard-striped cache makes the
  //    test-and-record atomic, so under concurrent submission of the
  //    same solution exactly one caller wins.
  if (!redeemed_.try_redeem(puzzle.puzzle_id)) {
    return common::err(ErrorCode::kReplay, "puzzle already redeemed");
  }

  return common::Status::success();
}

common::Status Verifier::verify(const Puzzle& puzzle, const Solution& solution,
                                const std::string& observed_ip) {
  // Reject id mismatches before paying for the context: a flood of
  // mismatched solutions must stay one integer compare, not a prefix
  // serialization plus midstate per submission.
  if (const common::Status id = check_id(puzzle, solution); !id.ok()) {
    return id;
  }
  const PuzzleContext context(puzzle);
  const common::Status pre =
      precheck(puzzle, solution, observed_ip, context.prefix());
  if (!pre.ok()) return pre;
  return finalize(puzzle, context.digest_for(solution.nonce));
}

}  // namespace powai::pow
