#include "pow/multi_puzzle.hpp"

#include <bit>
#include <stdexcept>

namespace powai::pow {

MultiPuzzle split_puzzle(const Puzzle& base, unsigned fanout) {
  if (fanout == 0 || !std::has_single_bit(fanout)) {
    throw std::invalid_argument("split_puzzle: fanout must be a power of two");
  }
  const auto log2_fanout = static_cast<unsigned>(std::countr_zero(fanout));
  if (log2_fanout >= base.difficulty) {
    throw std::invalid_argument(
        "split_puzzle: log2(fanout) must be below the base difficulty");
  }
  MultiPuzzle out;
  out.base = base;
  out.fanout = fanout;
  out.sub_difficulty = base.difficulty - log2_fanout;
  return out;
}

crypto::Digest sub_digest(const MultiPuzzle& puzzle, unsigned index,
                          std::uint64_t nonce) {
  common::Bytes tail;
  tail.push_back(static_cast<std::uint8_t>('S'));
  common::append_u32be(tail, index);
  common::append_u64be(tail, nonce);
  return crypto::Sha256::hash2(puzzle.base.prefix_bytes(), tail);
}

bool is_valid_sub_solution(const MultiPuzzle& puzzle, unsigned index,
                           std::uint64_t nonce) {
  return crypto::meets_difficulty(sub_digest(puzzle, index, nonce),
                                  puzzle.sub_difficulty);
}

bool is_valid_multi_solution(const MultiPuzzle& puzzle,
                             const MultiSolution& solution) {
  if (solution.puzzle_id != puzzle.base.puzzle_id) return false;
  if (solution.nonces.size() != puzzle.fanout) return false;
  for (unsigned i = 0; i < puzzle.fanout; ++i) {
    if (!is_valid_sub_solution(puzzle, i, solution.nonces[i])) return false;
  }
  return true;
}

MultiSolveResult solve_multi(const MultiPuzzle& puzzle,
                             const SolveOptions& options) {
  MultiSolveResult result;
  result.solution.puzzle_id = puzzle.base.puzzle_id;
  result.solution.nonces.reserve(puzzle.fanout);

  const common::Bytes prefix = puzzle.base.prefix_bytes();
  for (unsigned i = 0; i < puzzle.fanout; ++i) {
    common::Bytes tail;
    tail.push_back(static_cast<std::uint8_t>('S'));
    common::append_u32be(tail, i);
    tail.resize(tail.size() + 8);

    std::uint64_t nonce = options.start_nonce;
    bool found = false;
    while (!found) {
      if (options.max_attempts != 0 && result.attempts >= options.max_attempts) {
        return result;  // budget exhausted: found stays false
      }
      if (options.cancel != nullptr &&
          result.attempts % 256 == 0 &&
          options.cancel->load(std::memory_order_relaxed)) {
        return result;
      }
      for (int b = 0; b < 8; ++b) {
        tail[5 + static_cast<std::size_t>(b)] =
            static_cast<std::uint8_t>(nonce >> (8 * (7 - b)));
      }
      ++result.attempts;
      const crypto::Digest digest = crypto::Sha256::hash2(prefix, tail);
      if (crypto::meets_difficulty(digest, puzzle.sub_difficulty)) {
        result.solution.nonces.push_back(nonce);
        found = true;
      }
      ++nonce;
    }
  }
  result.found = true;
  return result;
}

}  // namespace powai::pow
