#include "pow/generator.hpp"

#include <cstring>
#include <stdexcept>

#include "crypto/hmac.hpp"

namespace powai::pow {

namespace {
constexpr std::size_t kSeedBytes = 32;

/// Identity domains for puzzle-id derivation (wire-stable: changing
/// them changes every issued seed).
constexpr std::uint8_t kKeyedDomain = 0x01;    ///< issue_for(request_key)
constexpr std::uint8_t kCounterDomain = 0x02;  ///< issue() internal counter
}  // namespace

PuzzleGenerator::PuzzleGenerator(const common::Clock& clock,
                                 common::BytesView master_secret)
    : clock_(&clock),
      seed_streams_(crypto::derive_key(master_secret, common::bytes_of("seed"), 32),
                    common::bytes_of("powai-seed-drbg")),
      mac_key_(derive_mac_key(master_secret)) {
  if (master_secret.empty()) {
    throw std::invalid_argument("PuzzleGenerator: empty master secret");
  }
  const common::Bytes id_key =
      crypto::derive_key(master_secret, common::bytes_of("puzzle-id"), 16);
  std::memcpy(id_key_.data(), id_key.data(), id_key_.size());
}

common::Bytes PuzzleGenerator::derive_mac_key(common::BytesView master_secret) {
  if (master_secret.empty()) {
    throw std::invalid_argument("derive_mac_key: empty master secret");
  }
  return crypto::derive_key(master_secret, common::bytes_of("mac"), 32);
}

crypto::Digest PuzzleGenerator::compute_auth(common::BytesView mac_key,
                                             const Puzzle& puzzle) {
  return compute_auth(mac_key, puzzle.prefix_bytes(), puzzle.puzzle_id);
}

crypto::Digest PuzzleGenerator::compute_auth(common::BytesView mac_key,
                                             common::BytesView prefix,
                                             std::uint64_t puzzle_id) {
  // Streams mac_input() = prefix || u64be(id) without materializing it.
  crypto::HmacSha256 mac(mac_key);
  mac.update(prefix);
  std::uint8_t id_be[8];
  common::store_u64be(id_be, puzzle_id);
  mac.update(common::BytesView(id_be, 8));
  return mac.finish();
}

std::uint64_t PuzzleGenerator::derive_id(std::uint8_t domain,
                                         const std::string& client_ip,
                                         std::uint64_t request_key) const {
  // Fixed-width prefix (domain || key) before the variable-length ip, so
  // no two distinct (domain, key, ip) triples serialize identically.
  common::Bytes material;
  material.reserve(9 + client_ip.size());
  material.push_back(domain);
  common::append_u64be(material, request_key);
  common::append(material, common::bytes_of(client_ip));
  return crypto::siphash24(id_key_, material);
}

std::uint64_t PuzzleGenerator::derive_puzzle_id(
    const std::string& client_ip, std::uint64_t request_key) const {
  return derive_id(kKeyedDomain, client_ip, request_key);
}

Puzzle PuzzleGenerator::issue_with_id(std::uint64_t puzzle_id,
                                      const std::string& client_ip,
                                      unsigned difficulty) {
  Puzzle p;
  p.puzzle_id = puzzle_id;
  // Pure per-id derivation: no chain state, no lock — the seed depends
  // only on (master_secret, puzzle_id), so concurrent issuers cannot
  // perturb each other's puzzles.
  p.seed = seed_streams_.generate(p.puzzle_id, kSeedBytes);
  p.issued_at_ms = common::to_millis(clock_->now());
  p.difficulty = difficulty;
  p.client_binding = client_ip;
  p.auth = compute_auth(mac_key_, p);
  issued_.fetch_add(1, std::memory_order_relaxed);
  return p;
}

Puzzle PuzzleGenerator::issue_for(const std::string& client_ip,
                                  std::uint64_t request_key,
                                  unsigned difficulty) {
  return issue_with_id(derive_id(kKeyedDomain, client_ip, request_key),
                       client_ip, difficulty);
}

Puzzle PuzzleGenerator::issue(const std::string& client_ip,
                              unsigned difficulty) {
  const std::uint64_t key =
      legacy_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  return issue_with_id(derive_id(kCounterDomain, client_ip, key), client_ip,
                       difficulty);
}

}  // namespace powai::pow
