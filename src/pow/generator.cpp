#include "pow/generator.hpp"

#include <stdexcept>

#include "crypto/hmac.hpp"

namespace powai::pow {

namespace {
constexpr std::size_t kSeedBytes = 32;
}

PuzzleGenerator::PuzzleGenerator(const common::Clock& clock,
                                 common::BytesView master_secret)
    : clock_(&clock),
      seed_drbg_(crypto::derive_key(master_secret, common::bytes_of("seed"), 32),
                 common::bytes_of("powai-seed-drbg")),
      mac_key_(derive_mac_key(master_secret)) {
  if (master_secret.empty()) {
    throw std::invalid_argument("PuzzleGenerator: empty master secret");
  }
}

common::Bytes PuzzleGenerator::derive_mac_key(common::BytesView master_secret) {
  if (master_secret.empty()) {
    throw std::invalid_argument("derive_mac_key: empty master secret");
  }
  return crypto::derive_key(master_secret, common::bytes_of("mac"), 32);
}

crypto::Digest PuzzleGenerator::compute_auth(common::BytesView mac_key,
                                             const Puzzle& puzzle) {
  return crypto::hmac_sha256(mac_key, puzzle.mac_input());
}

Puzzle PuzzleGenerator::issue(const std::string& client_ip,
                              unsigned difficulty) {
  Puzzle p;
  p.puzzle_id = next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  {
    // One HMAC-DRBG generate under the lock: seeds must come off the
    // chain one at a time, but the MAC below runs outside it.
    std::lock_guard<std::mutex> lock(seed_mu_);
    p.seed = seed_drbg_.generate(kSeedBytes);
  }
  p.issued_at_ms = common::to_millis(clock_->now());
  p.difficulty = difficulty;
  p.client_binding = client_ip;
  p.auth = compute_auth(mac_key_, p);
  return p;
}

}  // namespace powai::pow
