#pragma once
/// \file verifier.hpp
/// The puzzle verification module (Fig. 1, step 5): a "light weight block
/// used to verify the client's solution" (§II.5). Verification is O(1):
/// one HMAC (authenticity), one SHA-256 (solution), a timestamp window
/// check (expiry), and a replay-cache membership test.

#include <cstdint>
#include <string>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/error.hpp"
#include "pow/puzzle.hpp"
#include "pow/replay_cache.hpp"

namespace powai::pow {

/// Verifier policy knobs.
struct VerifierConfig final {
  /// Solutions arriving more than this after issuance are rejected. Must
  /// cover the worst-case solve time of the hardest puzzle the server
  /// issues, plus slack.
  common::Duration ttl = std::chrono::seconds(120);

  /// Tolerated clock skew for puzzles that appear to come from the
  /// future (only relevant once issuance and verification run on
  /// different machines).
  common::Duration future_skew = std::chrono::seconds(5);

  /// Redeemed-puzzle memory (FIFO per shard). Must exceed the number of
  /// puzzles the server can issue within one ttl window — with headroom
  /// (~2x) when replay_shards > 1: the budget is split per shard, and a
  /// statistically hot shard evicts before the global budget is reached,
  /// which would let an early-evicted solution be redeemed twice.
  std::size_t replay_capacity = 1 << 20;

  /// Lock stripes for the replay cache (rounded up to a power of two).
  /// 1 gives the classic single-FIFO semantics (eviction exactly at
  /// replay_capacity insertions); higher values trade strict global
  /// FIFO eviction for concurrent redemption.
  std::size_t replay_shards = 16;
};

/// Stateful solution verifier (replay cache); share one instance per
/// issuing generator.
///
/// Thread-safe: every member is immutable after construction except the
/// replay cache, which is internally shard-striped, so any number of
/// threads may call verify() concurrently (that is what BatchVerifier
/// does). A redeemed puzzle is accepted by exactly one of them.
class Verifier final {
 public:
  /// \p clock must outlive the verifier. \p master_secret must equal the
  /// generator's.
  Verifier(const common::Clock& clock, common::BytesView master_secret,
           VerifierConfig config = {});

  /// Full verification of \p solution against \p puzzle, optionally
  /// rebinding to the observed client IP (pass empty to skip the
  /// binding check, e.g. behind a NAT-rewriting proxy).
  ///
  /// Error codes: kInvalidArgument (MAC/bind/id mismatch), kExpired,
  /// kBadSolution, kReplay.
  ///
  /// Serializes the puzzle prefix exactly once per call: the same bytes
  /// feed the MAC authenticity check (streamed through the HMAC) and
  /// the solution digest (via a PuzzleContext midstate).
  [[nodiscard]] common::Status verify(const Puzzle& puzzle,
                                      const Solution& solution,
                                      const std::string& observed_ip = {});

  /// Staged API for batch callers (BatchVerifier): verify() is exactly
  /// precheck() → solution digest → finalize(), split so a batch can
  /// compute all its digests in one Sha256::hash_many multi-lane sweep
  /// between the two stages.
  ///
  /// Stage 1 — everything *before* the solution hash: id match, MAC
  /// authenticity over \p prefix (which must be puzzle.prefix_bytes();
  /// pass the copy you already hold), client binding, expiry window.
  /// Const and lock-free.
  [[nodiscard]] common::Status precheck(const Puzzle& puzzle,
                                        const Solution& solution,
                                        const std::string& observed_ip,
                                        common::BytesView prefix) const;

  /// Stage 2 — the work itself plus single redemption, given the
  /// already-computed digest of (prefix || nonce). Touches the replay
  /// cache; thread-safe.
  [[nodiscard]] common::Status finalize(const Puzzle& puzzle,
                                        const crypto::Digest& digest);

  /// The cheap id-mismatch guard (also the first thing precheck does),
  /// exposed so callers can reject a mismatched submission before
  /// paying for the prefix serialization the other stages need.
  [[nodiscard]] static common::Status check_id(const Puzzle& puzzle,
                                               const Solution& solution);

  /// Number of puzzles currently remembered as redeemed.
  [[nodiscard]] std::size_t replay_entries() const { return redeemed_.size(); }

  /// Approximate resident footprint of the replay memory, in bytes
  /// (diagnostic — feeds the load benches' bytes/client accounting).
  [[nodiscard]] std::size_t replay_memory_bytes() const {
    return redeemed_.memory_bytes();
  }

  [[nodiscard]] const VerifierConfig& config() const { return config_; }

 private:
  const common::Clock* clock_;
  common::Bytes mac_key_;
  VerifierConfig config_;
  ShardedReplayCache redeemed_;
};

}  // namespace powai::pow
