#pragma once
/// \file replay_cache.hpp
/// Shard-striped redeemed-puzzle memory. The verifier's replay check is
/// the only mutable state on the verification hot path; striping it over
/// independently-locked shards lets many threads redeem concurrently
/// with contention only on puzzle-id hash collisions into the same
/// shard. Each shard keeps its own FIFO so eviction stays O(1) and never
/// takes more than one lock.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_set>

namespace powai::pow {

class ShardedReplayCache final {
 public:
  /// \p capacity is the total redeemed-id budget, distributed *exactly*
  /// across \p shards: the per-shard budgets always sum to \p capacity.
  /// The shard count is rounded up to a power of two, then halved until
  /// every shard keeps a budget of at least one entry (a zero-budget
  /// shard would evict its own insertion and re-admit a replayed id).
  /// Throws std::invalid_argument if capacity == 0.
  explicit ShardedReplayCache(std::size_t capacity, std::size_t shards = 16);

  ShardedReplayCache(const ShardedReplayCache&) = delete;
  ShardedReplayCache& operator=(const ShardedReplayCache&) = delete;

  /// Atomically tests and records \p id. Returns true exactly once per
  /// id (until capacity eviction forgets it): the caller that gets true
  /// owns the redemption. Thread-safe.
  [[nodiscard]] bool try_redeem(std::uint64_t id);

  /// Membership probe (racy under concurrent redeem, by nature).
  [[nodiscard]] bool contains(std::uint64_t id) const;

  /// Total remembered ids, summed over shards. Exact when quiescent.
  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] std::size_t shard_count() const { return shard_mask_ + 1; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::size_t capacity = 0;  // this shard's slice of the global budget
    std::unordered_set<std::uint64_t> set;
    std::deque<std::uint64_t> fifo;  // insertion order, for eviction
  };

  [[nodiscard]] Shard& shard_for(std::uint64_t id) const;

  std::size_t capacity_;
  std::uint64_t shard_mask_;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace powai::pow
