#pragma once
/// \file replay_cache.hpp
/// Shard-striped redeemed-puzzle memory. The verifier's replay check is
/// the only mutable state on the verification hot path; striping it over
/// independently-locked shards lets many threads redeem concurrently
/// with contention only on puzzle-id hash collisions into the same
/// shard. Each shard keeps its own FIFO so eviction stays O(1) and never
/// takes more than one lock.
///
/// Capacity is a *global* budget the shards borrow from, not a set of
/// fixed per-shard slices. Eviction triggers on the global resident
/// count: an insert that pushes the total past `capacity` evicts the
/// oldest entry of the *inserting* shard (never touching another
/// shard's lock). Under uniform ids this behaves exactly like the old
/// exact per-shard split; under shard skew the hot shard borrows the
/// budget the cold shards aren't using instead of thrashing its small
/// slice while the global budget sits idle.
///
/// Consequence — the re-redemption window: a redeemed id is forgotten
/// (and thus redeemable again) only after enough *same-shard* inserts
/// push it off the FIFO. With borrowing that window stretches from
/// capacity/shards up to the full global capacity under a fully skewed
/// insert stream (tests/test_replay_cache.cpp pins both ends). A shard
/// never evicts the entry it just admitted, so each non-empty shard
/// retains at least one id; the resident total can therefore overshoot
/// `capacity` by at most shards-1 transiently (inserts that found their
/// shard empty while the budget was full), and drains back as soon as
/// inserts land on shards with an older entry to give up.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_set>

namespace powai::pow {

class ShardedReplayCache final {
 public:
  /// \p capacity is the total redeemed-id budget (borrowed across
  /// shards, see file comment). The shard count is rounded up to a
  /// power of two, then halved until it does not exceed the capacity
  /// (more stripes than budget would guarantee permanent overshoot).
  /// Throws std::invalid_argument if capacity == 0.
  explicit ShardedReplayCache(std::size_t capacity, std::size_t shards = 16);

  ShardedReplayCache(const ShardedReplayCache&) = delete;
  ShardedReplayCache& operator=(const ShardedReplayCache&) = delete;

  /// Atomically tests and records \p id. Returns true exactly once per
  /// id (until capacity eviction forgets it): the caller that gets true
  /// owns the redemption. Thread-safe.
  [[nodiscard]] bool try_redeem(std::uint64_t id);

  /// Membership probe (racy under concurrent redeem, by nature).
  [[nodiscard]] bool contains(std::uint64_t id) const;

  /// Total remembered ids, summed over shards. Exact when quiescent.
  [[nodiscard]] std::size_t size() const;

  /// Approximate resident footprint in bytes (hash sets + FIFOs).
  /// Diagnostic — feeds the load benches' bytes/client accounting.
  /// Thread-safe.
  [[nodiscard]] std::size_t memory_bytes() const;

  [[nodiscard]] std::size_t shard_count() const { return shard_mask_ + 1; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_set<std::uint64_t> set;
    std::deque<std::uint64_t> fifo;  // insertion order, for eviction
  };

  [[nodiscard]] Shard& shard_for(std::uint64_t id) const;

  std::size_t capacity_;
  std::uint64_t shard_mask_;
  std::unique_ptr<Shard[]> shards_;

  /// Global resident count — the budget the shards borrow from. Updated
  /// under the inserting shard's lock but read cross-shard, hence
  /// atomic.
  std::atomic<std::size_t> resident_{0};
};

}  // namespace powai::pow
