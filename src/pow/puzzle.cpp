#include "pow/puzzle.hpp"

#include <algorithm>
#include <span>

#include "common/strings.hpp"

namespace powai::pow {

common::Bytes Puzzle::prefix_bytes() const {
  // "POWAI1|<seed hex>|<timestamp>|<difficulty>|<client ip>|"
  common::Bytes out;
  // Exact for the fixed pieces, generous for the numeric fields — one
  // allocation instead of a realloc per append on the issuance path.
  out.reserve(7 + 2 * seed.size() + 20 + 10 + client_binding.size() + 4 + 8);
  common::append(out, common::bytes_of("POWAI1|"));
  common::append(out, common::bytes_of(common::to_hex(seed)));
  common::append(out, common::bytes_of("|"));
  common::append(out, common::bytes_of(std::to_string(issued_at_ms)));
  common::append(out, common::bytes_of("|"));
  common::append(out, common::bytes_of(std::to_string(difficulty)));
  common::append(out, common::bytes_of("|"));
  common::append(out, common::bytes_of(client_binding));
  common::append(out, common::bytes_of("|"));
  return out;
}

common::Bytes Puzzle::mac_input() const {
  common::Bytes out = prefix_bytes();
  common::append_u64be(out, puzzle_id);
  return out;
}

common::Bytes Puzzle::serialize() const {
  common::Bytes out;
  out.reserve(8 + 4 + seed.size() + 8 + 4 + 4 + client_binding.size() +
              auth.size());
  common::append_u64be(out, puzzle_id);
  common::append_u32be(out, static_cast<std::uint32_t>(seed.size()));
  common::append(out, seed);
  common::append_u64be(out, static_cast<std::uint64_t>(issued_at_ms));
  common::append_u32be(out, difficulty);
  common::append_u32be(out, static_cast<std::uint32_t>(client_binding.size()));
  common::append(out, common::bytes_of(client_binding));
  common::append(out, common::BytesView(auth.data(), auth.size()));
  return out;
}

std::optional<Puzzle> Puzzle::deserialize(common::BytesView data) {
  common::ByteReader reader(data);
  Puzzle p;
  const auto id = reader.read_u64be();
  if (!id) return std::nullopt;
  p.puzzle_id = *id;

  const auto seed_len = reader.read_u32be();
  if (!seed_len || *seed_len > 1024) return std::nullopt;
  auto seed = reader.read_bytes(*seed_len);
  if (!seed) return std::nullopt;
  p.seed = std::move(*seed);

  const auto ts = reader.read_u64be();
  if (!ts) return std::nullopt;
  p.issued_at_ms = static_cast<std::int64_t>(*ts);

  const auto diff = reader.read_u32be();
  if (!diff) return std::nullopt;
  p.difficulty = *diff;

  const auto binding_len = reader.read_u32be();
  if (!binding_len || *binding_len > 256) return std::nullopt;
  const auto binding = reader.read_bytes(*binding_len);
  if (!binding) return std::nullopt;
  p.client_binding = common::string_of(*binding);

  const auto mac = reader.read_bytes(p.auth.size());
  if (!mac) return std::nullopt;
  std::copy(mac->begin(), mac->end(), p.auth.begin());

  if (!reader.empty()) return std::nullopt;  // trailing garbage
  return p;
}

common::Bytes Solution::serialize() const {
  common::Bytes out;
  common::append_u64be(out, puzzle_id);
  common::append_u64be(out, nonce);
  return out;
}

std::optional<Solution> Solution::deserialize(common::BytesView data) {
  common::ByteReader reader(data);
  Solution s;
  const auto id = reader.read_u64be();
  const auto nonce = reader.read_u64be();
  if (!id || !nonce || !reader.empty()) return std::nullopt;
  s.puzzle_id = *id;
  s.nonce = *nonce;
  return s;
}

PuzzleContext::PuzzleContext(const Puzzle& puzzle)
    : prefix_(puzzle.prefix_bytes()),
      midstate_(crypto::Sha256::precompute(prefix_)),
      puzzle_id_(puzzle.puzzle_id),
      difficulty_(puzzle.difficulty) {}

crypto::Digest PuzzleContext::digest_for(std::uint64_t nonce) const {
  std::uint8_t nonce_be[8];
  common::store_u64be(nonce_be, nonce);
  const std::size_t tail_offset = static_cast<std::size_t>(midstate_.absorbed);
  return crypto::Sha256::finish_with_suffix(
      midstate_,
      common::BytesView(prefix_.data() + tail_offset,
                        prefix_.size() - tail_offset),
      common::BytesView(nonce_be, 8));
}

bool PuzzleContext::check(std::uint64_t nonce) const {
  return crypto::meets_difficulty(digest_for(nonce), difficulty_);
}

std::size_t PuzzleContext::check_many(std::uint64_t start, std::uint64_t stride,
                                      std::size_t count) const {
  // Widest lane group any backend sweeps (AVX-512); wider requests are
  // chunked so the buffers stay on the stack.
  constexpr std::size_t kMaxSweep = 16;
  const std::size_t tail_offset = static_cast<std::size_t>(midstate_.absorbed);
  const common::BytesView tail(prefix_.data() + tail_offset,
                               prefix_.size() - tail_offset);

  std::uint8_t nonce_be[kMaxSweep][8];
  common::BytesView suffixes[kMaxSweep];
  crypto::Digest digests[kMaxSweep];

  std::uint64_t nonce = start;
  for (std::size_t done = 0; done < count;) {
    const std::size_t n = std::min(kMaxSweep, count - done);
    for (std::size_t i = 0; i < n; ++i) {
      common::store_u64be(nonce_be[i], nonce);
      suffixes[i] = common::BytesView(nonce_be[i], 8);
      nonce += stride;
    }
    crypto::Sha256::finish_many_with_suffix(
        midstate_, tail, std::span<const common::BytesView>(suffixes, n),
        std::span<crypto::Digest>(digests, n));
    for (std::size_t i = 0; i < n; ++i) {
      if (crypto::meets_difficulty(digests[i], difficulty_)) return done + i;
    }
    done += n;
  }
  return count;
}

crypto::Digest solution_digest(const Puzzle& puzzle, std::uint64_t nonce) {
  return PuzzleContext(puzzle).digest_for(nonce);
}

bool is_valid_solution(const Puzzle& puzzle, std::uint64_t nonce) {
  return PuzzleContext(puzzle).check(nonce);
}

}  // namespace powai::pow
