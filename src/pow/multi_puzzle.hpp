#pragma once
/// \file multi_puzzle.hpp
/// Variance-reduced puzzles: an extension of the paper's puzzle module.
///
/// A single d-difficult puzzle solves in a geometric number of attempts —
/// mean 2^d but standard deviation ≈ 2^d, so the latency a policy
/// "assigns" is really a wide distribution (visible as noise in Figure
/// 2). Splitting the work into k independent subpuzzles of difficulty
/// d − log2(k) keeps the expected work at 2^d while shrinking the
/// relative standard deviation by √k: the policy's latency target becomes
/// much tighter. (Classic PoW refinement; fits the paper's "each
/// component can be customized" design.)
///
/// Subpuzzle i's digest is SHA-256(prefix || "S" || i_be32 || nonce_i);
/// all subpuzzles share the base puzzle's seed/timestamp/binding/MAC, so
/// issuing and authenticity checks are unchanged.

#include <cstdint>
#include <optional>
#include <vector>

#include "pow/puzzle.hpp"
#include "pow/solver.hpp"

namespace powai::pow {

/// A base puzzle split into `fanout` subpuzzles of `sub_difficulty`.
struct MultiPuzzle final {
  Puzzle base;
  unsigned fanout = 1;
  unsigned sub_difficulty = 1;
};

/// A claimed multi-solution: one nonce per subpuzzle, in index order.
struct MultiSolution final {
  std::uint64_t puzzle_id = 0;
  std::vector<std::uint64_t> nonces;
};

/// Splits \p base into \p fanout subpuzzles of equal total expected work
/// (2^d). \p fanout must be a power of two with log2(fanout) <
/// base.difficulty; throws std::invalid_argument otherwise. fanout == 1
/// degenerates to the plain puzzle.
[[nodiscard]] MultiPuzzle split_puzzle(const Puzzle& base, unsigned fanout);

/// Digest of subpuzzle \p index under \p nonce.
[[nodiscard]] crypto::Digest sub_digest(const MultiPuzzle& puzzle,
                                        unsigned index, std::uint64_t nonce);

/// True iff \p nonce solves subpuzzle \p index.
[[nodiscard]] bool is_valid_sub_solution(const MultiPuzzle& puzzle,
                                         unsigned index, std::uint64_t nonce);

/// Work check for a complete multi-solution (id match, nonce count,
/// every subpuzzle met). Authenticity/expiry/replay of the *base* puzzle
/// are the Verifier's job, exactly as for plain puzzles.
[[nodiscard]] bool is_valid_multi_solution(const MultiPuzzle& puzzle,
                                           const MultiSolution& solution);

/// Result of a multi-solve.
struct MultiSolveResult final {
  MultiSolution solution;
  std::uint64_t attempts = 0;  ///< total hashes across subpuzzles
  bool found = false;
};

/// Solves every subpuzzle sequentially (budget shared across
/// subpuzzles; found=false if it runs out). Options' threads apply to
/// each subpuzzle search in turn.
[[nodiscard]] MultiSolveResult solve_multi(const MultiPuzzle& puzzle,
                                           const SolveOptions& options = {});

}  // namespace powai::pow
