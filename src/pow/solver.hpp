#pragma once
/// \file solver.hpp
/// The puzzle solver (Fig. 1, client side). Performs the nonce search:
/// repeatedly hash (prefix || nonce) until the digest has the required
/// number of leading zero bits. Supports bounded searches, cancellation,
/// and multi-threaded strided search.
///
/// The inner loop is lane-parallel: on a multi-buffer SHA-256 backend
/// (AVX2: 8 lanes, AVX-512: 16) each sweep finishes lane_width() nonces
/// from the shared midstate in one vectorized pass
/// (PuzzleContext::check_many); single-stream backends (generic,
/// SHA-NI, ARMv8-CE) probe one nonce at a time. The observable result —
/// (found, nonce, attempts) — is bit-identical across all backends:
/// the first qualifying nonce in probe order always wins and attempts
/// counts probes up to and including it.

#include <atomic>
#include <cstdint>
#include <optional>

#include "common/error.hpp"
#include "pow/puzzle.hpp"

namespace powai::pow {

/// Knobs for one solve call.
struct SolveOptions final {
  /// Give up after this many attempts (0 = unbounded). An unbounded
  /// search terminates with probability 1 but callers under latency
  /// budgets should bound it: 2^(d+4) attempts fail with probability
  /// < e^-16.
  std::uint64_t max_attempts = 0;

  /// Worker threads; 1 = search inline on the calling thread.
  unsigned threads = 1;

  /// First nonce tried (workers stride from here). Lets tests make
  /// solutions deterministic and callers resume an aborted search.
  std::uint64_t start_nonce = 0;

  /// Optional external cancellation flag (not owned); the search stops
  /// soon after it becomes true.
  const std::atomic<bool>* cancel = nullptr;
};

/// Outcome of a solve call.
struct SolveResult final {
  Solution solution;            ///< valid iff `found`
  std::uint64_t attempts = 0;   ///< total hash evaluations across threads
  bool found = false;
};

/// Outcome of one strided scan (a single worker's share of a solve).
struct ScanResult final {
  std::uint64_t nonce = 0;      ///< valid iff `found`
  std::uint64_t attempts = 0;   ///< probes made, including the hit
  bool found = false;
};

/// Stateless solver (safe to share across threads; each call is
/// independent).
class Solver final {
 public:
  /// Searches for a nonce solving \p puzzle. Returns a found=false result
  /// when max_attempts is exhausted or `cancel` fires first.
  [[nodiscard]] SolveResult solve(const Puzzle& puzzle,
                                  const SolveOptions& options = {}) const;

  /// One strided scan: probes start, start + stride, ... until a nonce
  /// qualifies, \p max_attempts probes are spent (0 = unbounded), or
  /// \p cancel / \p stop (both optional, read-only, polled every few
  /// hundred probes) becomes true. Probes are swept lane_width() at a
  /// time on a multi-lane backend; the result is deterministic and
  /// backend-independent — the first qualifying nonce in probe order,
  /// with attempts counting every probe up to and including it. This is
  /// the primitive solve() runs per worker, exposed for tests and
  /// callers that manage their own threads.
  [[nodiscard]] static ScanResult scan(const PuzzleContext& context,
                                       std::uint64_t start,
                                       std::uint64_t stride,
                                       std::uint64_t max_attempts,
                                       const std::atomic<bool>* cancel = nullptr,
                                       const std::atomic<bool>* stop = nullptr);
};

}  // namespace powai::pow
