#pragma once
/// \file solver.hpp
/// The puzzle solver (Fig. 1, client side). Performs the nonce search:
/// repeatedly hash (prefix || nonce) until the digest has the required
/// number of leading zero bits. Supports bounded searches, cancellation,
/// and multi-threaded strided search.

#include <atomic>
#include <cstdint>
#include <optional>

#include "common/error.hpp"
#include "pow/puzzle.hpp"

namespace powai::pow {

/// Knobs for one solve call.
struct SolveOptions final {
  /// Give up after this many attempts (0 = unbounded). An unbounded
  /// search terminates with probability 1 but callers under latency
  /// budgets should bound it: 2^(d+4) attempts fail with probability
  /// < e^-16.
  std::uint64_t max_attempts = 0;

  /// Worker threads; 1 = search inline on the calling thread.
  unsigned threads = 1;

  /// First nonce tried (workers stride from here). Lets tests make
  /// solutions deterministic and callers resume an aborted search.
  std::uint64_t start_nonce = 0;

  /// Optional external cancellation flag (not owned); the search stops
  /// soon after it becomes true.
  const std::atomic<bool>* cancel = nullptr;
};

/// Outcome of a solve call.
struct SolveResult final {
  Solution solution;            ///< valid iff `found`
  std::uint64_t attempts = 0;   ///< total hash evaluations across threads
  bool found = false;
};

/// Stateless solver (safe to share across threads; each call is
/// independent).
class Solver final {
 public:
  /// Searches for a nonce solving \p puzzle. Returns a found=false result
  /// when max_attempts is exhausted or `cancel` fires first.
  [[nodiscard]] SolveResult solve(const Puzzle& puzzle,
                                  const SolveOptions& options = {}) const;
};

}  // namespace powai::pow
