#include "pow/replay_cache.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/hashing.hpp"

namespace powai::pow {

ShardedReplayCache::ShardedReplayCache(std::size_t capacity,
                                       std::size_t shards)
    : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("ShardedReplayCache: capacity == 0");
  }
  std::size_t n = common::round_up_pow2(std::max<std::size_t>(1, shards));
  while (n > 1 && n > capacity) n >>= 1;
  shard_mask_ = n - 1;
  shards_ = std::make_unique<Shard[]>(n);
  // Distribute the budget exactly: rounding the per-shard slice up would
  // let the resident total exceed `capacity` by up to n-1 entries.
  for (std::size_t i = 0; i < n; ++i) {
    shards_[i].capacity = common::split_slice(capacity, n, i);
  }
}

ShardedReplayCache::Shard& ShardedReplayCache::shard_for(
    std::uint64_t id) const {
  // Puzzle ids are sequential; the finalizer spreads them uniformly
  // across the power-of-two mask.
  return shards_[common::mix64(id) & shard_mask_];
}

bool ShardedReplayCache::try_redeem(std::uint64_t id) {
  Shard& s = shard_for(id);
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.set.insert(id).second) return false;
  s.fifo.push_back(id);
  if (s.fifo.size() > s.capacity) {
    s.set.erase(s.fifo.front());
    s.fifo.pop_front();
  }
  return true;
}

bool ShardedReplayCache::contains(std::uint64_t id) const {
  const Shard& s = shard_for(id);
  std::lock_guard<std::mutex> lock(s.mu);
  return s.set.contains(id);
}

std::size_t ShardedReplayCache::size() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i <= shard_mask_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    total += shards_[i].set.size();
  }
  return total;
}

}  // namespace powai::pow
