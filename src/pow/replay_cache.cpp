#include "pow/replay_cache.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/hashing.hpp"

namespace powai::pow {

ShardedReplayCache::ShardedReplayCache(std::size_t capacity,
                                       std::size_t shards)
    : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("ShardedReplayCache: capacity == 0");
  }
  std::size_t n = common::round_up_pow2(std::max<std::size_t>(1, shards));
  while (n > 1 && n > capacity) n >>= 1;
  shard_mask_ = n - 1;
  shards_ = std::make_unique<Shard[]>(n);
}

ShardedReplayCache::Shard& ShardedReplayCache::shard_for(
    std::uint64_t id) const {
  // Puzzle ids are sequential; the finalizer spreads them uniformly
  // across the power-of-two mask.
  return shards_[common::mix64(id) & shard_mask_];
}

bool ShardedReplayCache::try_redeem(std::uint64_t id) {
  Shard& s = shard_for(id);
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.set.insert(id).second) return false;
  s.fifo.push_back(id);
  resident_.fetch_add(1, std::memory_order_relaxed);
  // Capacity borrowing: evict from *this* shard's FIFO while the global
  // budget is exceeded — but never the entry just admitted (fifo > 1),
  // or a replayed id would be re-admitted on the very next call. The
  // loop (rather than a single evict) drains any transient overshoot
  // left behind by inserts that found their shard empty.
  while (resident_.load(std::memory_order_relaxed) > capacity_ &&
         s.fifo.size() > 1) {
    s.set.erase(s.fifo.front());
    s.fifo.pop_front();
    resident_.fetch_sub(1, std::memory_order_relaxed);
  }
  return true;
}

bool ShardedReplayCache::contains(std::uint64_t id) const {
  const Shard& s = shard_for(id);
  std::lock_guard<std::mutex> lock(s.mu);
  return s.set.contains(id);
}

std::size_t ShardedReplayCache::size() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i <= shard_mask_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    total += shards_[i].set.size();
  }
  return total;
}

std::size_t ShardedReplayCache::memory_bytes() const {
  std::size_t total = shard_count() * sizeof(Shard);
  for (std::size_t i = 0; i <= shard_mask_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    const Shard& s = shards_[i];
    // Hash-set node (id + next pointer + allocator overhead) plus its
    // share of the bucket array, plus the FIFO's flat storage.
    total += s.set.bucket_count() * sizeof(void*) +
             s.set.size() * (sizeof(std::uint64_t) + 2 * sizeof(void*)) +
             s.fifo.size() * sizeof(std::uint64_t);
  }
  return total;
}

}  // namespace powai::pow
