#include "pow/replay_cache.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/hashing.hpp"

namespace powai::pow {

ShardedReplayCache::ShardedReplayCache(std::size_t capacity,
                                       std::size_t shards) {
  if (capacity == 0) {
    throw std::invalid_argument("ShardedReplayCache: capacity == 0");
  }
  const std::size_t n =
      common::round_up_pow2(std::max<std::size_t>(1, shards));
  shard_mask_ = n - 1;
  per_shard_capacity_ = std::max<std::size_t>(1, (capacity + n - 1) / n);
  shards_ = std::make_unique<Shard[]>(n);
}

ShardedReplayCache::Shard& ShardedReplayCache::shard_for(
    std::uint64_t id) const {
  // Puzzle ids are sequential; the finalizer spreads them uniformly
  // across the power-of-two mask.
  return shards_[common::mix64(id) & shard_mask_];
}

bool ShardedReplayCache::try_redeem(std::uint64_t id) {
  Shard& s = shard_for(id);
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.set.insert(id).second) return false;
  s.fifo.push_back(id);
  if (s.fifo.size() > per_shard_capacity_) {
    s.set.erase(s.fifo.front());
    s.fifo.pop_front();
  }
  return true;
}

bool ShardedReplayCache::contains(std::uint64_t id) const {
  const Shard& s = shard_for(id);
  std::lock_guard<std::mutex> lock(s.mu);
  return s.set.contains(id);
}

std::size_t ShardedReplayCache::size() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i <= shard_mask_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    total += shards_[i].set.size();
  }
  return total;
}

}  // namespace powai::pow
