#include "pow/batch_verifier.hpp"

namespace powai::pow {

BatchVerifier::BatchVerifier(Verifier& verifier, std::size_t threads)
    : verifier_(&verifier),
      owned_pool_(std::make_unique<common::ThreadPool>(threads)),
      pool_(owned_pool_.get()) {}

BatchVerifier::BatchVerifier(Verifier& verifier, common::ThreadPool& pool)
    : verifier_(&verifier), pool_(&pool) {}

namespace {
const std::string kNoObservedIp;
}  // namespace

std::vector<common::Status> BatchVerifier::verify_batch(
    std::span<const VerificationJob> jobs) {
  std::vector<common::Status> results(jobs.size(), common::Status::success());
  pool_->parallel_for(jobs.size(), [&](std::size_t i) {
    const VerificationJob& job = jobs[i];
    results[i] = verifier_->verify(
        *job.puzzle, *job.solution,
        job.observed_ip ? *job.observed_ip : kNoObservedIp);
  });
  return results;
}

std::vector<common::Status> BatchVerifier::verify_sequential(
    std::span<const VerificationJob> jobs) {
  std::vector<common::Status> results;
  results.reserve(jobs.size());
  for (const VerificationJob& job : jobs) {
    results.push_back(verifier_->verify(
        *job.puzzle, *job.solution,
        job.observed_ip ? *job.observed_ip : kNoObservedIp));
  }
  return results;
}

}  // namespace powai::pow
