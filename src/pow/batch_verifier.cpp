#include "pow/batch_verifier.hpp"

#include "crypto/sha256.hpp"

namespace powai::pow {

BatchVerifier::BatchVerifier(Verifier& verifier, std::size_t threads)
    : verifier_(&verifier),
      owned_pool_(std::make_unique<common::ThreadPool>(threads)),
      pool_(owned_pool_.get()) {}

BatchVerifier::BatchVerifier(Verifier& verifier, common::ThreadPool& pool)
    : verifier_(&verifier), pool_(&pool) {}

namespace {
const std::string kNoObservedIp;

/// Messages per hash_many call in the digest sweep: large enough to
/// fill SIMD lanes several times over, small enough that the pool can
/// split a big batch across workers.
constexpr std::size_t kSweepChunk = 64;
}  // namespace

std::vector<common::Status> BatchVerifier::verify_batch(
    std::span<const VerificationJob> jobs) {
  const std::size_t n = jobs.size();
  std::vector<common::Status> results(n, common::Status::success());
  if (n == 0) return results;

  // Stage 1 (parallel): precheck + one (prefix || nonce) serialization
  // per job. Workers touch disjoint indices only.
  std::vector<common::Bytes> messages(n);
  std::vector<std::uint8_t> passed(n, 0);
  pool_->parallel_for(n, [&](std::size_t i) {
    const VerificationJob& job = jobs[i];
    // Id mismatches stay one integer compare — no serialization.
    if (const common::Status id = Verifier::check_id(*job.puzzle,
                                                     *job.solution);
        !id.ok()) {
      results[i] = id;
      return;
    }
    common::Bytes message = job.puzzle->prefix_bytes();
    const common::Status status = verifier_->precheck(
        *job.puzzle, *job.solution,
        job.observed_ip ? *job.observed_ip : kNoObservedIp, message);
    if (!status.ok()) {
      results[i] = status;
      return;
    }
    common::append_u64be(message, job.solution->nonce);
    messages[i] = std::move(message);
    passed[i] = 1;
  });

  // Stage 2 (parallel over chunks): digest every surviving message in
  // multi-buffer lane sweeps.
  std::vector<std::uint32_t> pending;
  pending.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (passed[i] != 0) pending.push_back(static_cast<std::uint32_t>(i));
  }
  std::vector<common::BytesView> views(pending.size());
  std::vector<crypto::Digest> digests(pending.size());
  for (std::size_t k = 0; k < pending.size(); ++k) {
    views[k] = messages[pending[k]];
  }
  const std::size_t chunks = (pending.size() + kSweepChunk - 1) / kSweepChunk;
  pool_->parallel_for(chunks, [&](std::size_t c) {
    const std::size_t lo = c * kSweepChunk;
    const std::size_t len = std::min(kSweepChunk, pending.size() - lo);
    crypto::Sha256::hash_many(
        std::span<const common::BytesView>(views).subspan(lo, len),
        std::span<crypto::Digest>(digests).subspan(lo, len));
  });

  // Stage 3 (serial, batch order): difficulty + exactly-once
  // redemption. Batch order makes duplicate-id outcomes identical to a
  // sequential run — the first occurrence wins.
  for (std::size_t k = 0; k < pending.size(); ++k) {
    const std::uint32_t i = pending[k];
    results[i] = verifier_->finalize(*jobs[i].puzzle, digests[k]);
  }
  return results;
}

std::vector<common::Status> BatchVerifier::verify_sequential(
    std::span<const VerificationJob> jobs) {
  std::vector<common::Status> results;
  results.reserve(jobs.size());
  for (const VerificationJob& job : jobs) {
    results.push_back(verifier_->verify(
        *job.puzzle, *job.solution,
        job.observed_ip ? *job.observed_ip : kNoObservedIp));
  }
  return results;
}

}  // namespace powai::pow
