#pragma once
/// \file difficulty.hpp
/// Difficulty arithmetic. A d-difficult puzzle requires a SHA-256 output
/// with d leading zero bits; each attempt succeeds independently with
/// probability 2^-d, so attempts-to-solve is geometric. These helpers
/// convert between difficulty, expected work, time, and confidence — the
/// quantitative backbone of the latency model used in the Figure 2
/// reproduction.

#include <cstdint>

namespace powai::pow {

/// Expected number of hash evaluations to solve difficulty \p d (2^d).
[[nodiscard]] double expected_hashes(unsigned d);

/// Probability that at least one of \p attempts hashes solves a
/// d-difficult puzzle: 1 - (1 - 2^-d)^attempts.
[[nodiscard]] double solve_probability(unsigned d, std::uint64_t attempts);

/// Attempts needed to solve with probability \p confidence ∈ (0, 1):
/// the \p confidence-quantile of the geometric distribution.
[[nodiscard]] double attempts_for_confidence(unsigned d, double confidence);

/// Expected solve time in milliseconds at \p hash_rate hashes/second.
[[nodiscard]] double expected_solve_ms(unsigned d, double hash_rate);

/// Median solve time in milliseconds (ln 2 · mean, geometric median).
[[nodiscard]] double median_solve_ms(unsigned d, double hash_rate);

/// Smallest difficulty whose expected solve time at \p hash_rate meets or
/// exceeds \p target_ms (clamped to [1, 63]).
[[nodiscard]] unsigned difficulty_for_target_ms(double target_ms,
                                                double hash_rate);

}  // namespace powai::pow
