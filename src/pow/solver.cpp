#include "pow/solver.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <vector>

namespace powai::pow {

namespace {

/// Poll the cancel / stop flags only every ~N attempts: an atomic load
/// per hash would dominate at low difficulties. Power of two by
/// convention; lane sweeps advance the counter by a full batch, so the
/// poll happens on the first sweep boundary at or past the interval.
constexpr std::uint64_t kCheckInterval = 256;
static_assert((kCheckInterval & (kCheckInterval - 1)) == 0,
              "kCheckInterval must be a power of two");

}  // namespace

ScanResult Solver::scan(const PuzzleContext& context, std::uint64_t start,
                        std::uint64_t stride, std::uint64_t max_attempts,
                        const std::atomic<bool>* cancel,
                        const std::atomic<bool>* stop) {
  ScanResult result;
  // Sweep width of the active backend: 16 (AVX-512), 8 (AVX2), or 1
  // (single-stream backends probe one nonce at a time).
  const std::uint64_t width =
      crypto::Sha256::lane_width(crypto::Sha256::backend());

  std::uint64_t nonce = start;
  // Start at the interval so the flags are consulted before the first
  // probe (a scan launched after a sibling already won does no work).
  std::uint64_t since_poll = kCheckInterval;

  while (max_attempts == 0 || result.attempts < max_attempts) {
    if (since_poll >= kCheckInterval) {
      since_poll = 0;
      if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
        return result;
      }
      if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
        return result;
      }
    }

    // Batch = lane width, clipped to the remaining budget so a bounded
    // scan never probes past max_attempts.
    std::uint64_t batch = width;
    if (max_attempts != 0) {
      batch = std::min<std::uint64_t>(batch, max_attempts - result.attempts);
    }

    if (batch <= 1) {
      ++result.attempts;
      ++since_poll;
      if (context.check(nonce)) {
        result.nonce = nonce;
        result.found = true;
        return result;
      }
      nonce += stride;
    } else {
      const std::size_t hit =
          context.check_many(nonce, stride, static_cast<std::size_t>(batch));
      if (hit < batch) {
        // First qualifying nonce in probe order; the probes after it in
        // the same sweep are not counted — identical to a scalar scan
        // that would have stopped there.
        result.attempts += hit + 1;
        result.nonce = nonce + stride * hit;
        result.found = true;
        return result;
      }
      result.attempts += batch;
      since_poll += batch;
      nonce += stride * batch;
    }
  }
  return result;
}

SolveResult Solver::solve(const Puzzle& puzzle,
                          const SolveOptions& options) const {
  if (options.threads == 0) {
    throw std::invalid_argument("Solver::solve: threads must be >= 1");
  }

  SolveResult result;

  // One context for the whole solve: serialized prefix + midstate are
  // computed once and shared read-only by every worker.
  const PuzzleContext context(puzzle);

  if (options.threads == 1) {
    const ScanResult w = scan(context, options.start_nonce, 1,
                              options.max_attempts, options.cancel, nullptr);
    result.attempts = w.attempts;
    result.found = w.found;
    if (w.found) result.solution = Solution{puzzle.puzzle_id, w.nonce};
    return result;
  }

  const std::uint64_t n = options.threads;
  // Exact budget split: the first (max % n) workers get one extra
  // attempt, so the per-worker budgets sum to exactly max_attempts.
  // Workers whose share is zero are not spawned at all — a zero budget
  // means "unbounded" to scan().
  const std::uint64_t base = options.max_attempts / n;
  const std::uint64_t extra = options.max_attempts % n;

  std::atomic<bool> someone_found{false};
  std::vector<ScanResult> results(options.threads);
  {
    std::vector<std::jthread> workers;
    workers.reserve(options.threads);
    for (std::uint64_t w = 0; w < n; ++w) {
      const std::uint64_t budget =
          options.max_attempts == 0 ? 0 : base + (w < extra ? 1 : 0);
      if (options.max_attempts != 0 && budget == 0) break;
      workers.emplace_back([&, w, budget] {
        ScanResult r = scan(context, options.start_nonce + w, n, budget,
                            options.cancel, &someone_found);
        if (r.found) someone_found.store(true, std::memory_order_relaxed);
        results[w] = r;
      });
    }
  }  // join

  for (const ScanResult& w : results) {
    result.attempts += w.attempts;
    if (w.found && !result.found) {
      result.found = true;
      result.solution = Solution{puzzle.puzzle_id, w.nonce};
    }
  }
  return result;
}

}  // namespace powai::pow
