#include "pow/solver.hpp"

#include <stdexcept>
#include <thread>
#include <vector>

namespace powai::pow {

namespace {

/// Check the cancel flag / shared found flag only every N attempts: an
/// atomic load per hash would dominate at low difficulties. Power of
/// two so the hot loop tests `attempts & (N - 1)` instead of dividing.
constexpr std::uint64_t kCheckInterval = 256;
static_assert((kCheckInterval & (kCheckInterval - 1)) == 0,
              "kCheckInterval must be a power of two");

struct WorkerResult {
  std::uint64_t nonce = 0;
  std::uint64_t attempts = 0;
  bool found = false;
};

/// Strided scan: worker w tries start + w, start + w + stride, ...
/// The shared context carries the serialized prefix and its SHA-256
/// midstate, so each attempt is one final-block compression with an
/// in-place big-endian nonce store — nothing is allocated or
/// re-serialized inside the loop.
WorkerResult scan(const PuzzleContext& context, std::uint64_t start,
                  std::uint64_t stride, std::uint64_t max_attempts,
                  const std::atomic<bool>* cancel,
                  std::atomic<bool>& someone_found) {
  WorkerResult result;
  std::uint64_t nonce = start;
  while (max_attempts == 0 || result.attempts < max_attempts) {
    if ((result.attempts & (kCheckInterval - 1)) == 0) {
      if (someone_found.load(std::memory_order_relaxed)) return result;
      if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
        return result;
      }
    }
    ++result.attempts;
    if (context.check(nonce)) {
      result.nonce = nonce;
      result.found = true;
      someone_found.store(true, std::memory_order_relaxed);
      return result;
    }
    nonce += stride;
  }
  return result;
}

}  // namespace

SolveResult Solver::solve(const Puzzle& puzzle,
                          const SolveOptions& options) const {
  if (options.threads == 0) {
    throw std::invalid_argument("Solver::solve: threads must be >= 1");
  }

  std::atomic<bool> someone_found{false};
  SolveResult result;

  // One context for the whole solve: serialized prefix + midstate are
  // computed once and shared read-only by every worker.
  const PuzzleContext context(puzzle);

  if (options.threads == 1) {
    const WorkerResult w =
        scan(context, options.start_nonce, 1, options.max_attempts,
             options.cancel, someone_found);
    result.attempts = w.attempts;
    result.found = w.found;
    if (w.found) result.solution = Solution{puzzle.puzzle_id, w.nonce};
    return result;
  }

  const unsigned n = options.threads;
  // Per-worker budget: split the total so max_attempts bounds the sum.
  const std::uint64_t per_worker =
      options.max_attempts == 0 ? 0 : (options.max_attempts + n - 1) / n;

  std::vector<WorkerResult> results(n);
  {
    std::vector<std::jthread> workers;
    workers.reserve(n);
    for (unsigned w = 0; w < n; ++w) {
      workers.emplace_back([&, w] {
        results[w] = scan(context, options.start_nonce + w, n, per_worker,
                          options.cancel, someone_found);
      });
    }
  }  // join

  for (const WorkerResult& w : results) {
    result.attempts += w.attempts;
    if (w.found && !result.found) {
      result.found = true;
      result.solution = Solution{puzzle.puzzle_id, w.nonce};
    }
  }
  return result;
}

}  // namespace powai::pow
