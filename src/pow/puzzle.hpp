#pragma once
/// \file puzzle.hpp
/// The PoW puzzle and its solution (Fig. 1, steps 4-5). A puzzle is
/// "request related data, i.e., timestamp and unique seed (for mitigating
/// pre-computation attacks), and a difficulty value" (§II.3). The client
/// concatenates this data with its IP address into an immutable prefix
/// string, appends a nonce, and searches for a SHA-256 output with `d`
/// leading zero bits (§II.4).
///
/// Deviation from the paper, documented: the paper appends a 32-bit
/// nonce; we use 64 bits so the nonce space cannot be exhausted at the
/// top of the supported difficulty band (2^40 expected attempts).

#include <cstdint>
#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"

namespace powai::pow {

/// A puzzle as issued by the server. The `auth` tag is an HMAC over all
/// other fields under the issuer's secret: verification is stateless —
/// the server does not remember issued puzzles, it just checks the tag.
struct Puzzle final {
  std::uint64_t puzzle_id = 0;      ///< unique per issue (for replay cache)
  common::Bytes seed;               ///< 32 unpredictable bytes
  std::int64_t issued_at_ms = 0;    ///< server timestamp (for expiry)
  unsigned difficulty = 1;          ///< required leading zero bits
  std::string client_binding;       ///< client IP the puzzle is bound to
  crypto::Digest auth{};            ///< issuer MAC over the fields above

  /// Canonical immutable prefix the solver hashes: every field separated
  /// by '|' so no two distinct puzzles share a prefix.
  [[nodiscard]] common::Bytes prefix_bytes() const;

  /// Bytes covered by the issuer MAC (prefix is a strict subset of it).
  [[nodiscard]] common::Bytes mac_input() const;

  /// Wire encoding (length-prefixed fields, big-endian).
  [[nodiscard]] common::Bytes serialize() const;
  [[nodiscard]] static std::optional<Puzzle> deserialize(common::BytesView data);

  bool operator==(const Puzzle&) const = default;
};

/// A claimed solution.
struct Solution final {
  std::uint64_t puzzle_id = 0;
  std::uint64_t nonce = 0;

  [[nodiscard]] common::Bytes serialize() const;
  [[nodiscard]] static std::optional<Solution> deserialize(common::BytesView data);

  bool operator==(const Solution&) const = default;
};

/// Precomputed hashing context for one puzzle — the hot-path form of
/// the (prefix || nonce) digest. Construction serializes the prefix
/// once and absorbs its full 64-byte blocks into a SHA-256 midstate;
/// after that every digest_for()/check() call is a single final-block
/// compression with an in-place big-endian nonce store: no allocation,
/// no re-serialization, no re-compression of the prefix.
///
/// Immutable after construction and therefore freely shared across
/// threads (the solver's strided workers all read one context).
class PuzzleContext final {
 public:
  explicit PuzzleContext(const Puzzle& puzzle);

  /// The serialized prefix (also the MAC input minus the trailing id) —
  /// cached so callers never re-derive it per use.
  [[nodiscard]] const common::Bytes& prefix() const { return prefix_; }

  [[nodiscard]] std::uint64_t puzzle_id() const { return puzzle_id_; }
  [[nodiscard]] unsigned difficulty() const { return difficulty_; }

  /// SHA-256(prefix || nonce_be64). Allocation-free.
  [[nodiscard]] crypto::Digest digest_for(std::uint64_t nonce) const;

  /// True iff \p nonce solves the puzzle this context was built from.
  [[nodiscard]] bool check(std::uint64_t nonce) const;

  /// Checks \p count strided nonces (start, start + stride, ...) in one
  /// call, sweeping them through the active SHA-256 backend's SIMD
  /// lanes (16 nonces per AVX-512 group, 8 per AVX2; single-stream
  /// backends fall back to sequential finishes) over the shared
  /// midstate. Returns the index of the FIRST qualifying nonce in probe
  /// order, or \p count when none qualifies — the observable result is
  /// bit-identical to calling check() on each nonce in sequence.
  /// Allocation-free.
  [[nodiscard]] std::size_t check_many(std::uint64_t start,
                                       std::uint64_t stride,
                                       std::size_t count) const;

 private:
  common::Bytes prefix_;
  crypto::Sha256Midstate midstate_;  ///< over prefix_'s full blocks
  std::uint64_t puzzle_id_ = 0;
  unsigned difficulty_ = 1;
};

/// Hash of (puzzle prefix || nonce) — the quantity compared against the
/// difficulty target. One definition shared by solver and verifier.
/// Convenience form: builds a PuzzleContext per call — loops should
/// build the context once and use digest_for().
[[nodiscard]] crypto::Digest solution_digest(const Puzzle& puzzle,
                                             std::uint64_t nonce);

/// True iff \p nonce solves \p puzzle (one-shot; loops should use
/// PuzzleContext::check).
[[nodiscard]] bool is_valid_solution(const Puzzle& puzzle, std::uint64_t nonce);

}  // namespace powai::pow
