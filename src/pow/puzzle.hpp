#pragma once
/// \file puzzle.hpp
/// The PoW puzzle and its solution (Fig. 1, steps 4-5). A puzzle is
/// "request related data, i.e., timestamp and unique seed (for mitigating
/// pre-computation attacks), and a difficulty value" (§II.3). The client
/// concatenates this data with its IP address into an immutable prefix
/// string, appends a nonce, and searches for a SHA-256 output with `d`
/// leading zero bits (§II.4).
///
/// Deviation from the paper, documented: the paper appends a 32-bit
/// nonce; we use 64 bits so the nonce space cannot be exhausted at the
/// top of the supported difficulty band (2^40 expected attempts).

#include <cstdint>
#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"

namespace powai::pow {

/// A puzzle as issued by the server. The `auth` tag is an HMAC over all
/// other fields under the issuer's secret: verification is stateless —
/// the server does not remember issued puzzles, it just checks the tag.
struct Puzzle final {
  std::uint64_t puzzle_id = 0;      ///< unique per issue (for replay cache)
  common::Bytes seed;               ///< 32 unpredictable bytes
  std::int64_t issued_at_ms = 0;    ///< server timestamp (for expiry)
  unsigned difficulty = 1;          ///< required leading zero bits
  std::string client_binding;       ///< client IP the puzzle is bound to
  crypto::Digest auth{};            ///< issuer MAC over the fields above

  /// Canonical immutable prefix the solver hashes: every field separated
  /// by '|' so no two distinct puzzles share a prefix.
  [[nodiscard]] common::Bytes prefix_bytes() const;

  /// Bytes covered by the issuer MAC (prefix is a strict subset of it).
  [[nodiscard]] common::Bytes mac_input() const;

  /// Wire encoding (length-prefixed fields, big-endian).
  [[nodiscard]] common::Bytes serialize() const;
  [[nodiscard]] static std::optional<Puzzle> deserialize(common::BytesView data);

  bool operator==(const Puzzle&) const = default;
};

/// A claimed solution.
struct Solution final {
  std::uint64_t puzzle_id = 0;
  std::uint64_t nonce = 0;

  [[nodiscard]] common::Bytes serialize() const;
  [[nodiscard]] static std::optional<Solution> deserialize(common::BytesView data);

  bool operator==(const Solution&) const = default;
};

/// Hash of (puzzle prefix || nonce) — the quantity compared against the
/// difficulty target. One definition shared by solver and verifier.
[[nodiscard]] crypto::Digest solution_digest(const Puzzle& puzzle,
                                             std::uint64_t nonce);

/// True iff \p nonce solves \p puzzle.
[[nodiscard]] bool is_valid_solution(const Puzzle& puzzle, std::uint64_t nonce);

}  // namespace powai::pow
