#pragma once
/// \file batch_verifier.hpp
/// Parallel solution verification. A production front-end does not see
/// one submission at a time — it drains a socket and hands the verifier
/// a batch. BatchVerifier fans a batch out over a thread pool; because
/// Verifier::verify is thread-safe (shard-striped replay cache), the
/// workers share one verifier and one replay history.
///
/// For a batch with distinct puzzle ids the result vector is identical
/// to calling verify() sequentially in batch order. Duplicate ids race
/// for the single redemption: exactly one wins, but *which* one is
/// scheduling-dependent (sequential order makes the first win).

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "pow/puzzle.hpp"
#include "pow/verifier.hpp"

namespace powai::pow {

/// One unit of verification work. Non-owning: the referenced puzzle,
/// solution, and address must outlive the verify call — they normally
/// live in the submission batch being drained, so building the job list
/// copies three pointers per item instead of the puzzle bytes.
struct VerificationJob final {
  const Puzzle* puzzle = nullptr;
  const Solution* solution = nullptr;
  const std::string* observed_ip = nullptr;  ///< null/empty = skip binding check
};

class BatchVerifier final {
 public:
  /// Owns a fresh pool of \p threads workers (0 = hardware concurrency).
  /// \p verifier must outlive the batch verifier.
  explicit BatchVerifier(Verifier& verifier, std::size_t threads = 0);

  /// Shares an external pool. Both \p verifier and \p pool must outlive
  /// the batch verifier.
  BatchVerifier(Verifier& verifier, common::ThreadPool& pool);

  /// Verifies every job; result[i] corresponds to jobs[i]. Blocks until
  /// the whole batch is done.
  [[nodiscard]] std::vector<common::Status> verify_batch(
      std::span<const VerificationJob> jobs);

  /// Sequential reference implementation (same verifier, same replay
  /// state) — the baseline verify_batch is benchmarked against.
  [[nodiscard]] std::vector<common::Status> verify_sequential(
      std::span<const VerificationJob> jobs);

  [[nodiscard]] std::size_t threads() const { return pool_->size(); }

 private:
  Verifier* verifier_;
  std::unique_ptr<common::ThreadPool> owned_pool_;
  common::ThreadPool* pool_;
};

}  // namespace powai::pow
