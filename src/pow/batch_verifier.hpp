#pragma once
/// \file batch_verifier.hpp
/// Parallel solution verification. A production front-end does not see
/// one submission at a time — it drains a socket and hands the verifier
/// a batch. BatchVerifier runs the batch through the verifier's staged
/// API in three passes sharing one verifier and one replay history:
///
///  1. precheck (parallel on the pool): MAC / binding / expiry per job,
///     plus one serialization of each job's (prefix || nonce) message;
///  2. digest sweep (parallel over chunks): every surviving message is
///     hashed via crypto::Sha256::hash_many, so a batch is a handful of
///     multi-buffer lane sweeps instead of N scalar hashes;
///  3. finalize (serial, batch order): difficulty check and the
///     exactly-once replay redemption.
///
/// Because stage 3 runs in batch order, the result vector is identical
/// to calling verify() sequentially in batch order — including
/// duplicate puzzle ids, where the first occurrence in the batch wins
/// the single redemption (verify_batch used to leave the winner
/// scheduling-dependent; the staged form pins it).

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "pow/puzzle.hpp"
#include "pow/verifier.hpp"

namespace powai::pow {

/// One unit of verification work. Non-owning: the referenced puzzle,
/// solution, and address must outlive the verify call — they normally
/// live in the submission batch being drained, so building the job list
/// copies three pointers per item instead of the puzzle bytes.
struct VerificationJob final {
  const Puzzle* puzzle = nullptr;
  const Solution* solution = nullptr;
  const std::string* observed_ip = nullptr;  ///< null/empty = skip binding check
};

class BatchVerifier final {
 public:
  /// Owns a fresh pool of \p threads workers (0 = hardware concurrency).
  /// \p verifier must outlive the batch verifier.
  explicit BatchVerifier(Verifier& verifier, std::size_t threads = 0);

  /// Shares an external pool. Both \p verifier and \p pool must outlive
  /// the batch verifier.
  BatchVerifier(Verifier& verifier, common::ThreadPool& pool);

  /// Verifies every job; result[i] corresponds to jobs[i]. Blocks until
  /// the whole batch is done.
  [[nodiscard]] std::vector<common::Status> verify_batch(
      std::span<const VerificationJob> jobs);

  /// Sequential reference implementation (same verifier, same replay
  /// state) — the baseline verify_batch is benchmarked against.
  [[nodiscard]] std::vector<common::Status> verify_sequential(
      std::span<const VerificationJob> jobs);

  [[nodiscard]] std::size_t threads() const { return pool_->size(); }

 private:
  Verifier* verifier_;
  std::unique_ptr<common::ThreadPool> owned_pool_;
  common::ThreadPool* pool_;
};

}  // namespace powai::pow
