#include "pow/difficulty.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace powai::pow {

double expected_hashes(unsigned d) {
  if (d > 256) throw std::invalid_argument("expected_hashes: d > 256");
  return std::pow(2.0, static_cast<double>(d));
}

double solve_probability(unsigned d, std::uint64_t attempts) {
  if (d > 256) throw std::invalid_argument("solve_probability: d > 256");
  if (attempts == 0) return 0.0;
  const double p = std::pow(2.0, -static_cast<double>(d));
  // log1p for numerical stability at small p.
  return 1.0 - std::exp(static_cast<double>(attempts) * std::log1p(-p));
}

double attempts_for_confidence(unsigned d, double confidence) {
  if (!(confidence > 0.0 && confidence < 1.0)) {
    throw std::invalid_argument("attempts_for_confidence: confidence in (0,1)");
  }
  const double p = std::pow(2.0, -static_cast<double>(d));
  return std::log1p(-confidence) / std::log1p(-p);
}

double expected_solve_ms(unsigned d, double hash_rate) {
  if (!(hash_rate > 0.0)) {
    throw std::invalid_argument("expected_solve_ms: hash_rate <= 0");
  }
  return expected_hashes(d) / hash_rate * 1000.0;
}

double median_solve_ms(unsigned d, double hash_rate) {
  // Median of a geometric distribution with success probability p is
  // about ln(2)/p attempts.
  return expected_solve_ms(d, hash_rate) * std::numbers::ln2;
}

unsigned difficulty_for_target_ms(double target_ms, double hash_rate) {
  if (!(hash_rate > 0.0) || !(target_ms > 0.0)) {
    throw std::invalid_argument("difficulty_for_target_ms: non-positive input");
  }
  const double hashes = target_ms / 1000.0 * hash_rate;
  const double d = std::ceil(std::log2(std::max(hashes, 1.0)));
  return static_cast<unsigned>(std::clamp(d, 1.0, 63.0));
}

}  // namespace powai::pow
