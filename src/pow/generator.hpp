#pragma once
/// \file generator.hpp
/// The puzzle generation module (Fig. 1, step 4). Issues puzzles with an
/// unpredictable per-request seed (mitigating pre-computation, §II.3) and
/// authenticates every field with an HMAC so the verifier can be
/// stateless.
///
/// Key separation: from one master secret the generator derives an id
/// key (keys the puzzle-id PRF), a seed key (keys the per-id seed
/// streams), and a MAC key (tags puzzles). The verifier only ever needs
/// the MAC key.
///
/// Determinism: issuance is *keyed derivation*, not a chained stream.
/// `issue_for(client_ip, request_key, d)` derives the puzzle id as a
/// keyed PRF of (client_ip, request_key) and the seed as a pure function
/// of (master_secret, puzzle_id) — so the puzzle a given request gets is
/// independent of arrival order, thread interleaving, or batch shape,
/// and two runs of the same workload produce bit-identical puzzles.
/// Re-issuing for the same (client_ip, request_key) returns the same
/// id + seed (idempotent retry semantics; the replay cache still limits
/// redemption to once). The legacy `issue()` overload draws its request
/// key from an internal counter — unique per call, but arrival-ordered.
///
/// Thread-safe: all entry points may be called from any number of
/// threads with no locks anywhere — the derivation state is immutable
/// after construction and the only mutable members are relaxed atomics.

#include <atomic>
#include <cstdint>
#include <string>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "crypto/drbg.hpp"
#include "crypto/siphash.hpp"
#include "pow/puzzle.hpp"

namespace powai::pow {

/// Issues authenticated puzzles.
class PuzzleGenerator final {
 public:
  /// \p clock must outlive the generator. \p master_secret is shared with
  /// the Verifier; it must be non-empty.
  PuzzleGenerator(const common::Clock& clock, common::BytesView master_secret);

  /// Issues a puzzle of \p difficulty bound to \p client_ip (textual
  /// form) for the stable request identity \p request_key (typically the
  /// client-chosen request id). Same (client_ip, request_key) → same
  /// puzzle id and seed, in any run, under any scheduling. Thread-safe,
  /// lock-free.
  [[nodiscard]] Puzzle issue_for(const std::string& client_ip,
                                 std::uint64_t request_key,
                                 unsigned difficulty);

  /// Issues a puzzle using an internal counter as the request identity:
  /// each call produces a unique id and fresh seed, in arrival order.
  /// For callers without a stable per-request identity (standalone
  /// tools, benches). Thread-safe, lock-free.
  [[nodiscard]] Puzzle issue(const std::string& client_ip, unsigned difficulty);

  /// The puzzle id `issue_for(client_ip, request_key, …)` would assign —
  /// a keyed 64-bit PRF of the pair, exposed so callers can key other
  /// per-puzzle derivations (e.g. policy randomness streams) off the
  /// same stable identity before the puzzle exists. Thread-safe.
  [[nodiscard]] std::uint64_t derive_puzzle_id(const std::string& client_ip,
                                               std::uint64_t request_key) const;

  /// Hot-path variant of issue_for for callers that already hold the
  /// derived id: \p puzzle_id MUST be `derive_puzzle_id(client_ip, k)`
  /// for the request's identity k — passing anything else breaks the
  /// determinism and idempotency contracts (the id is not re-checked,
  /// to keep the PRF at one evaluation per request). Thread-safe,
  /// lock-free.
  [[nodiscard]] Puzzle issue_with_id(std::uint64_t puzzle_id,
                                     const std::string& client_ip,
                                     unsigned difficulty);

  /// Number of puzzles issued so far (exact once concurrent issuers have
  /// returned).
  [[nodiscard]] std::uint64_t issued_count() const {
    return issued_.load(std::memory_order_relaxed);
  }

  /// Computes the MAC a legitimate puzzle must carry. Exposed so the
  /// Verifier (and tests) share one definition.
  [[nodiscard]] static crypto::Digest compute_auth(common::BytesView mac_key,
                                                   const Puzzle& puzzle);

  /// Same MAC from an already-serialized prefix (the MAC input is
  /// prefix || id, streamed through the HMAC — no concatenation
  /// buffer). Lets the verify path reuse one serialization for both
  /// the authenticity check and the solution hash instead of deriving
  /// the prefix twice per submission.
  [[nodiscard]] static crypto::Digest compute_auth(common::BytesView mac_key,
                                                   common::BytesView prefix,
                                                   std::uint64_t puzzle_id);

  /// Derives the MAC key from a master secret (same derivation the
  /// generator uses internally; the Verifier calls this too).
  [[nodiscard]] static common::Bytes derive_mac_key(
      common::BytesView master_secret);

 private:
  /// \p domain separates the keyed (issue_for) and counter (issue)
  /// identity spaces so they can never alias each other's puzzle ids.
  [[nodiscard]] std::uint64_t derive_id(std::uint8_t domain,
                                        const std::string& client_ip,
                                        std::uint64_t request_key) const;

  const common::Clock* clock_;
  crypto::DerivedDrbg seed_streams_;  ///< per-puzzle-id seed derivation
  crypto::SipKey id_key_{};           ///< keys the puzzle-id PRF
  common::Bytes mac_key_;
  std::atomic<std::uint64_t> issued_{0};      ///< puzzles issued (count)
  std::atomic<std::uint64_t> legacy_seq_{0};  ///< identity source for issue()
};

}  // namespace powai::pow
