#pragma once
/// \file generator.hpp
/// The puzzle generation module (Fig. 1, step 4). Issues puzzles with an
/// unpredictable per-request seed (mitigating pre-computation, §II.3) and
/// authenticates every field with an HMAC so the verifier can be
/// stateless.
///
/// Key separation: from one master secret the generator derives a seed
/// key (feeds the DRBG that produces puzzle seeds) and a MAC key (tags
/// puzzles). The verifier only ever needs the MAC key.
///
/// Thread-safe: issue() may be called from any number of threads. The
/// puzzle-id sequence is a relaxed atomic (ids stay unique, which is all
/// the replay cache needs) and the DRBG chain state is updated under a
/// short internal lock; everything else is immutable after construction.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "crypto/drbg.hpp"
#include "pow/puzzle.hpp"

namespace powai::pow {

/// Issues authenticated puzzles.
class PuzzleGenerator final {
 public:
  /// \p clock must outlive the generator. \p master_secret is shared with
  /// the Verifier; it must be non-empty.
  PuzzleGenerator(const common::Clock& clock, common::BytesView master_secret);

  /// Issues a puzzle of \p difficulty bound to \p client_ip (textual
  /// form). Each call produces a unique id and fresh seed. Thread-safe.
  [[nodiscard]] Puzzle issue(const std::string& client_ip, unsigned difficulty);

  /// Number of puzzles issued so far (exact once concurrent issuers have
  /// returned).
  [[nodiscard]] std::uint64_t issued_count() const {
    return next_id_.load(std::memory_order_relaxed);
  }

  /// Computes the MAC a legitimate puzzle must carry. Exposed so the
  /// Verifier (and tests) share one definition.
  [[nodiscard]] static crypto::Digest compute_auth(common::BytesView mac_key,
                                                   const Puzzle& puzzle);

  /// Derives the MAC key from a master secret (same derivation the
  /// generator uses internally; the Verifier calls this too).
  [[nodiscard]] static common::Bytes derive_mac_key(
      common::BytesView master_secret);

 private:
  const common::Clock* clock_;
  std::mutex seed_mu_;  ///< guards seed_drbg_ (stateful chain)
  crypto::HmacDrbg seed_drbg_;
  common::Bytes mac_key_;
  std::atomic<std::uint64_t> next_id_{0};
};

}  // namespace powai::pow
