#!/usr/bin/env python3
"""Append a CI run's bench artifacts to an aggregated history file.

bench_diff.py answers "did this run regress against the committed
baseline?"; this script answers "what has throughput done over time?".
Each invocation appends ONE line of JSON (JSONL) per run to the history
file, carrying the run's identity (commit, toolchain label, timestamp)
and every artifact's rows verbatim. CI keeps the file in a cache keyed
per branch and uploads it as an artifact, so the full series survives
individual runs and can be plotted or tabulated offline:

  python3 -c "import json,sys; [print(r['commit'][:9], a['bench'], row) \
      for r in map(json.loads, open('bench-history.jsonl')) \
      for a in r['artifacts'] for row in a.get('rows', [])]"

Usage:
  scripts/bench_history.py --history bench-history.jsonl \
      --commit "$GITHUB_SHA" --label gcc-Release \
      cr.json st.json ss.json [sl.json ...]

Missing or malformed artifacts are skipped with a note — a bench that
failed should fail its own CI step, not the bookkeeping. The history
file is created on first use.
"""

import argparse
import datetime
import json
import sys


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("artifacts", nargs="+", help="bench JSON artifacts")
    parser.add_argument("--history", required=True,
                        help="JSONL file to append this run's record to")
    parser.add_argument("--commit", default="unknown",
                        help="commit SHA the artifacts were built from")
    parser.add_argument("--label", default="",
                        help="free-form run label, e.g. 'gcc-Release'")
    args = parser.parse_args()

    loaded = []
    for path in args.artifacts:
        try:
            with open(path, "r", encoding="utf-8") as f:
                artifact = json.load(f)
        except (OSError, json.JSONDecodeError) as err:
            print(f"note: skipping {path}: {err}")
            continue
        if not isinstance(artifact, dict) or "bench" not in artifact:
            print(f"note: skipping {path}: not a bench artifact")
            continue
        loaded.append(artifact)

    if not loaded:
        print("no usable artifacts; nothing appended")
        return 0

    record = {
        "commit": args.commit,
        "label": args.label,
        "recorded_at": datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="seconds"),
        "artifacts": loaded,
    }
    with open(args.history, "a", encoding="utf-8") as f:
        f.write(json.dumps(record, separators=(",", ":")) + "\n")
    print(f"appended {len(loaded)} artifact(s) for {args.commit[:12]} "
          f"to {args.history}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
