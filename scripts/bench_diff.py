#!/usr/bin/env python3
"""Compare bench JSON artifacts against a committed baseline.

The load benches (bench_server_load, bench_wire_load) emit one JSON
artifact per run (the `json=path` knob; CI uploads them per commit).
This script is the second half of the bench-tracking story: it diffs a
run's artifacts against bench/baseline.json and warns loudly — GitHub
workflow annotations plus a nonzero-looking banner — when a throughput
metric regresses by more than the threshold (default 10%).

Throughput on shared CI runners is noisy and the baseline was recorded
on different hardware, so a regression is a *warning* by default, not a
failure; pass --strict to turn warnings into exit code 1 (useful on
dedicated hardware).

Usage:
  scripts/bench_diff.py --baseline bench/baseline.json \
      bench-server-load.json bench-wire-load.json [--threshold 0.10]
      [--strict]

Baseline format: a JSON object mapping each artifact's "bench" name to
the artifact itself, e.g. {"server_load": {...}, "wire_load": {...}}.
Refresh it by re-running the benches and committing the new numbers:
  ./build/bench/bench_server_load max_clients=4 requests=32 json=sl.json
  ./build/bench/bench_wire_load clients=6 requests=8 max_threads=4 json=wl.json
  ./build/bench/bench_crypto --benchmark_filter=NONE json=cr.json
  ./build/bench/bench_solve_time trials=10 max_d=14 json=st.json \
      sweep_json=ss.json
  python3 -c "import json,sys; print(json.dumps({a['bench']: a for a in \
      (json.load(open(p)) for p in \
      ['sl.json','wl.json','cr.json','st.json','ss.json'])}, \
      indent=2))" > bench/baseline.json
"""

import argparse
import json
import sys

# Per-bench comparison spec: how rows are keyed and which metric is the
# throughput we track.
SPECS = {
    "server_load": {"row_key": "clients", "metric": "served_per_s"},
    "wire_load": {"row_key": "mode", "metric": "answered_per_wall_s"},
    # Population-paced scale runs (bench_wire_load pace=1 json=...).
    # Throughput only compares like scales: a run at a different client
    # count / request count / arrival process skips with a note instead
    # of flagging a bogus regression.
    "wire_load_scale": {"row_key": "mode", "metric": "answered_per_wall_s",
                        "match_fields": ["clients", "requests_per_client",
                                         "arrivals"]},
    # Overload-control runs (bench_wire_load overload=1 json=...): the
    # admission ladder, deadlines, and client retries reshape the
    # workload, so throughput only compares like configurations.
    "wire_load_overload": {"row_key": "mode",
                           "metric": "answered_per_wall_s",
                           "match_fields": ["clients",
                                            "requests_per_client"]},
    # Raw SHA-256 hot-path throughput (bench_crypto json=...): rows are
    # "<mode>/<backend>" cases, e.g. "solver_midstate/shani" — the
    # backend is part of the key, so rows only ever compare like with
    # like (a runner without SHA-NI simply has no shani rows).
    "crypto": {"row_key": "case", "metric": "hashes_per_s"},
    # Single-thread solver throughput per difficulty (bench_solve_time
    # json=...). Comparable only when both runs used the same dispatch
    # backend (match_fields), and the d<8 rows are microsecond-noise
    # (min_row_key drops them): the higher difficulties are the signal.
    "solve_time": {"row_key": "difficulty", "metric": "hashes_per_s",
                   "match_fields": ["sha256_backend"], "min_row_key": 8},
    # Single-probe vs lane-sweep solver throughput per backend
    # (bench_solve_time sweep_json=...): rows are "single/<backend>" and
    # "sweep/<backend>" cases, so like compares with like — the
    # sweep/single ratio within one backend is the lane-parallelism
    # speedup this tracks.
    "solver_sweep": {"row_key": "case", "metric": "hashes_per_s"},
}


def warn(message):
    """Non-fatal problem: visible in the log and, on GitHub Actions, as a
    workflow annotation. Malformed inputs degrade the comparison, they
    never crash it — a bench that failed to produce an artifact should
    surface as its own CI failure, not as a KeyError here."""
    print(f"warning: {message}")
    print(f"::warning title=bench diff::{message}")


def load_json(path):
    """Parses one JSON file; returns None (with a warning) when the file
    is missing or not valid JSON."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        warn(f"cannot read {path}: {err}")
        return None


def compare_artifact(artifact, baseline_artifact, threshold):
    """Yields (row_key, baseline_value, current_value, ratio, regressed)."""
    name = artifact.get("bench", "?")
    spec = SPECS.get(name)
    if spec is None:
        print(f"note: no comparison spec for bench '{name}', skipping")
        return
    key, metric = spec["row_key"], spec["metric"]
    for field in spec.get("match_fields", []):
        current, reference = artifact.get(field), baseline_artifact.get(field)
        if current != reference:
            print(f"note: {name} ran with {field}={current!r} but the "
                  f"baseline has {field}={reference!r}; not comparable, "
                  f"skipping")
            return
    min_row_key = spec.get("min_row_key")
    base_rows = {}
    for row in baseline_artifact.get("rows", []):
        if key not in row:
            warn(f"{name} baseline row lacks key field {key!r}, skipping row")
            continue
        base_rows[row[key]] = row
    for row in artifact.get("rows", []):
        if key not in row:
            warn(f"{name} row lacks key field {key!r}, skipping row")
            continue
        try:
            if min_row_key is not None and row[key] < min_row_key:
                continue
        except TypeError:
            warn(f"{name} row key {row[key]!r} not comparable to "
                 f"min_row_key {min_row_key!r}, skipping row")
            continue
        base = base_rows.get(row[key])
        if base is None:
            print(f"note: {name} row {row[key]!r} absent from baseline")
            continue
        current, reference = row.get(metric), base.get(metric)
        if not current or not reference:  # missing/zero: nothing to compare
            print(f"note: {name} row {row[key]!r} lacks a usable {metric}")
            continue
        ratio = current / reference
        yield row[key], reference, current, ratio, ratio < 1.0 - threshold


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("artifacts", nargs="+", help="bench JSON artifacts")
    parser.add_argument("--baseline", required=True,
                        help="committed baseline JSON (bench name -> artifact)")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative throughput drop that counts as a "
                             "regression (default 0.10 = 10%%)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on any regression instead of warning")
    args = parser.parse_args()

    baseline = load_json(args.baseline)
    if baseline is None or not isinstance(baseline, dict):
        warn(f"baseline {args.baseline} unusable; nothing to compare against")
        return 0
    regressions = []

    for path in args.artifacts:
        artifact = load_json(path)
        if artifact is None or not isinstance(artifact, dict):
            continue  # load_json already warned
        name = artifact.get("bench", "?")
        base = baseline.get(name)
        if base is None:
            warn(f"bench '{name}' has no baseline entry, skipping "
                 f"(refresh bench/baseline.json to start tracking it)")
            continue
        metric = SPECS.get(name, {}).get("metric", "?")
        print(f"\n{name} ({metric}), threshold {args.threshold:.0%}:")
        print(f"  {'row':<12} {'baseline':>12} {'current':>12} {'ratio':>8}")
        for row_key, ref, cur, ratio, regressed in compare_artifact(
                artifact, base, args.threshold):
            marker = "  << REGRESSION" if regressed else ""
            print(f"  {str(row_key):<12} {ref:>12.0f} {cur:>12.0f} "
                  f"{ratio:>7.2f}x{marker}")
            if regressed:
                regressions.append((name, row_key, ref, cur, ratio))

    if regressions:
        print("\n" + "!" * 66)
        print(f"!! {len(regressions)} throughput regression(s) beyond "
              f"{args.threshold:.0%} vs committed baseline")
        for name, row_key, ref, cur, ratio in regressions:
            msg = (f"{name}[{row_key}]: {cur:.0f}/s vs baseline {ref:.0f}/s "
                   f"({ratio:.2f}x)")
            print(f"!!   {msg}")
            # GitHub Actions annotation: shows on the workflow summary.
            print(f"::warning title=bench regression::{msg}")
        print("!" * 66)
        print("If this is expected (slower runner, intentional trade-off), "
              "refresh bench/baseline.json; see this script's docstring.")
        return 1 if args.strict else 0

    print("\nno throughput regressions beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
