#!/usr/bin/env python3
"""Render the bench-history JSONL series to a standalone SVG.

bench_history.py accumulates one JSONL record per CI run (commit,
label, every bench artifact's rows verbatim); this script turns that
series into a single SVG with one panel per bench — throughput over
runs, one polyline per row key (mode, client count, difficulty, ...).
Pure stdlib, no matplotlib: CI renders and uploads the picture next to
the raw series so a glance at the artifact answers "what has
throughput done lately?" without downloading anything.

Usage:
  scripts/bench_plot.py --history bench-history.jsonl --out bench-history.svg
  scripts/bench_plot.py --history bench-history.jsonl --out out.svg \
      --benches wire_load,wire_load_overload

An empty or missing history produces a placeholder SVG and exit 0 —
the plot is bookkeeping, not a gate.
"""

import argparse
import html
import json

# bench name -> which row field keys a series and which metric to plot.
# Mirrors scripts/bench_diff.py's SPECS so the picture tracks exactly
# what the regression gate compares.
SERIES = {
    "server_load": ("clients", "served_per_s"),
    "wire_load": ("mode", "answered_per_wall_s"),
    "wire_load_scale": ("mode", "answered_per_wall_s"),
    "wire_load_overload": ("mode", "answered_per_wall_s"),
    "crypto": ("case", "hashes_per_s"),
    "solve_time": ("difficulty", "hashes_per_s"),
    "solver_sweep": ("case", "hashes_per_s"),
}

PALETTE = ["#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd",
           "#8c564b", "#17becf", "#7f7f7f", "#bcbd22", "#e377c2"]

PANEL_W = 760
PANEL_H = 190
MARGIN_L = 64
MARGIN_R = 190
MARGIN_T = 34
MARGIN_B = 30


def load_history(path):
    """Returns the list of run records, oldest first; [] when the file is
    missing or empty. Malformed lines are skipped — same tolerance as
    the scripts that write the file."""
    records = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict) and "artifacts" in record:
                    records.append(record)
    except OSError:
        pass
    return records


def collect_series(records, bench):
    """-> (runs, series): runs is [(index, commit)], series maps row key
    -> {run index -> metric value}. Run indices count only the records
    that carried this bench, so gaps in coverage don't stretch lines."""
    key_field, metric = SERIES.get(bench, ("mode", None))
    runs = []
    series = {}
    for record in records:
        artifact = next((a for a in record.get("artifacts", [])
                         if a.get("bench") == bench), None)
        if artifact is None:
            continue
        index = len(runs)
        runs.append((index, str(record.get("commit", "?"))[:7]))
        for row in artifact.get("rows", []):
            key = str(row.get(key_field, "?"))
            value = row.get(metric) if metric else None
            if isinstance(value, (int, float)):
                series.setdefault(key, {})[index] = float(value)
    return runs, series


def fmt_si(value):
    for scale, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(value) >= scale:
            return f"{value / scale:.3g}{suffix}"
    return f"{value:.3g}"


def panel_svg(bench, runs, series, y_offset):
    """One bench's panel as a list of SVG elements."""
    key_field, metric = SERIES.get(bench, ("mode", None))
    parts = [f'<g transform="translate(0,{y_offset})">']
    parts.append(
        f'<text x="{MARGIN_L}" y="16" class="title">{html.escape(bench)}'
        f' — {html.escape(metric or "?")}</text>')

    plot_w = PANEL_W - MARGIN_L - MARGIN_R
    plot_h = PANEL_H - MARGIN_T - MARGIN_B
    top = MARGIN_T
    values = [v for points in series.values() for v in points.values()]
    if not runs or not values:
        parts.append(f'<text x="{MARGIN_L}" y="{top + 40}" class="note">'
                     'no data points</text>')
        parts.append("</g>")
        return parts

    y_max = max(values) * 1.06 or 1.0
    n = len(runs)

    def x_of(index):
        frac = 0.5 if n == 1 else index / (n - 1)
        return MARGIN_L + frac * plot_w

    def y_of(value):
        return top + plot_h * (1.0 - value / y_max)

    # Frame + horizontal gridlines with SI-formatted tick labels.
    parts.append(f'<rect x="{MARGIN_L}" y="{top}" width="{plot_w}" '
                 f'height="{plot_h}" class="frame"/>')
    for tick in range(5):
        value = y_max * tick / 4
        y = y_of(value)
        parts.append(f'<line x1="{MARGIN_L}" y1="{y:.1f}" '
                     f'x2="{MARGIN_L + plot_w}" y2="{y:.1f}" class="grid"/>')
        parts.append(f'<text x="{MARGIN_L - 6}" y="{y + 4:.1f}" '
                     f'class="ytick">{fmt_si(value)}</text>')

    # Commit labels along x, thinned to stay readable.
    step = max(1, n // 8)
    for index, commit in runs:
        if index % step and index != n - 1:
            continue
        x = x_of(index)
        parts.append(f'<text x="{x:.1f}" y="{top + plot_h + 16}" '
                     f'class="xtick">{html.escape(commit)}</text>')

    # One polyline (or lone markers) per row key, stable color per panel.
    legend_y = top + 6
    for color_index, key in enumerate(sorted(series)):
        points = series[key]
        color = PALETTE[color_index % len(PALETTE)]
        coords = [(x_of(i), y_of(points[i])) for i in sorted(points)]
        if len(coords) > 1:
            path = " ".join(f"{x:.1f},{y:.1f}" for x, y in coords)
            parts.append(f'<polyline points="{path}" fill="none" '
                         f'stroke="{color}" stroke-width="1.6"/>')
        for x, y in coords:
            parts.append(f'<circle cx="{x:.1f}" cy="{y:.1f}" r="2.2" '
                         f'fill="{color}"/>')
        last = points[max(points)]
        parts.append(
            f'<text x="{MARGIN_L + plot_w + 10}" y="{legend_y + 4}" '
            f'class="legend" fill="{color}">{html.escape(str(key))} '
            f'({fmt_si(last)})</text>')
        legend_y += 14
    parts.append("</g>")
    return parts


def render(records, benches):
    panels = []
    for bench in benches:
        runs, series = collect_series(records, bench)
        if runs or not records:
            panels.append((bench, runs, series))
    if not panels:
        panels = [(bench, [], {}) for bench in benches[:1]] or \
                 [("bench-history", [], {})]

    height = PANEL_H * len(panels) + 8
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{PANEL_W}" '
        f'height="{height}" viewBox="0 0 {PANEL_W} {height}">',
        "<style>"
        "text{font-family:ui-monospace,monospace;font-size:11px;"
        "fill:#333}"
        ".title{font-size:13px;font-weight:bold}"
        ".note{fill:#888}"
        ".ytick{text-anchor:end;fill:#666;font-size:10px}"
        ".xtick{text-anchor:middle;fill:#666;font-size:9px}"
        ".legend{font-size:10px}"
        ".frame{fill:none;stroke:#999;stroke-width:1}"
        ".grid{stroke:#e5e5e5;stroke-width:1}"
        "</style>",
        f'<rect x="0" y="0" width="{PANEL_W}" height="{height}" '
        'fill="#ffffff"/>',
    ]
    for index, (bench, runs, series) in enumerate(panels):
        parts.extend(panel_svg(bench, runs, series, index * PANEL_H + 4))
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--history", required=True,
                        help="bench-history.jsonl written by bench_history.py")
    parser.add_argument("--out", required=True, help="SVG output path")
    parser.add_argument("--benches", default=",".join(SERIES),
                        help="comma-separated bench names to plot "
                             "(default: all known)")
    args = parser.parse_args()

    records = load_history(args.history)
    benches = [b for b in args.benches.split(",") if b]
    svg = render(records, benches)
    with open(args.out, "w", encoding="utf-8") as f:
        f.write(svg)
    print(f"wrote {args.out}: {len(records)} run(s), "
          f"{len(benches)} bench panel(s) requested")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
